//! The shared cluster memory: banked L1 (both views), L2, control region —
//! plus the domain-partitioned timing state ([`DomainBanks`]) and the
//! cross-domain request record ([`XRequest`]) the epoch-sharded cycle
//! engine exchanges at epoch boundaries.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use terasim_iss::{MemError, MemOp, Memory};
use terasim_riscv::{AmoOp, Image};

use crate::topology::{L1Decode, Topology};

/// Applies an AMO to `old`.
fn amo_apply(op: AmoOp, old: u32, value: u32) -> u32 {
    match op {
        AmoOp::Swap => value,
        AmoOp::Add => old.wrapping_add(value),
        AmoOp::Xor => old ^ value,
        AmoOp::And => old & value,
        AmoOp::Or => old | value,
        AmoOp::Min => (old as i32).min(value as i32) as u32,
        AmoOp::Max => (old as i32).max(value as i32) as u32,
        AmoOp::Minu => old.min(value),
        AmoOp::Maxu => old.max(value),
    }
}

/// Words per dirty-tracking page (4 KiB). Coarse enough that the
/// write-path cost is one extra relaxed byte store per memory store, fine
/// enough that resetting a recycled arena touches only the KiBs a small
/// job actually dirtied instead of the 20 MiB allocation.
const DIRTY_PAGE_WORDS: usize = 1024;

/// Allocates a zeroed `Vec<AtomicU32>` through the `calloc` fast path
/// (element-wise construction of multi-MiB atomic arrays dominates
/// simulator start-up otherwise).
fn zeroed_atomics(words: usize) -> Vec<AtomicU32> {
    let zeroed: Vec<u32> = vec![0; words];
    // SAFETY: `AtomicU32` is documented to have "the same size and bit
    // validity as the underlying integer type, u32", and the same
    // alignment on all supported platforms; an all-zero bit pattern is a
    // valid `AtomicU32`. Length/capacity are preserved.
    unsafe {
        let mut v = std::mem::ManuallyDrop::new(zeroed);
        Vec::from_raw_parts(v.as_mut_ptr().cast::<AtomicU32>(), v.len(), v.capacity())
    }
}

#[derive(Debug)]
struct Inner {
    topo: Topology,
    /// L1 physical words, `bank * bank_words + offset`.
    l1: Vec<AtomicU32>,
    /// L2 words.
    l2: Vec<AtomicU32>,
    /// Per-hart pending wake bits (barrier release).
    wake: Vec<AtomicBool>,
    /// Wake notification channel: bumped on every wake-all publication so
    /// event-driven drivers can re-queue parked harts without polling
    /// every per-hart bit on every step.
    wake_epoch: AtomicU64,
    /// End-of-computation register.
    eoc: AtomicU32,
    dma_src: AtomicU32,
    dma_dst: AtomicU32,
    /// Per-page dirty flags for `l1`/`l2`, set (relaxed) on every store
    /// path and consumed by [`ClusterMem::reset`]: recycling an arena
    /// re-zeroes only the pages a job actually wrote. A flag is only ever
    /// *read* while the arena is quiescent (no job running), so relaxed
    /// marking is enough — the pool's lock hands the marks over.
    l1_dirty: Vec<AtomicBool>,
    l2_dirty: Vec<AtomicBool>,
}

/// The cluster's shared memory, cheaply cloneable (an [`Arc`] inside).
///
/// All harts see the same bytes; sub-word stores are implemented with
/// atomic read-modify-write so concurrent access to *different* bytes of a
/// word is safe. The DUT software is data-race-free by construction (each
/// subcarrier problem is core-private, paper §IV), so `SeqCst` atomics give
/// deterministic results.
///
/// # Examples
///
/// ```
/// use terasim_terapool::{ClusterMem, Topology};
///
/// let mem = ClusterMem::new(Topology::scaled(8));
/// mem.write_u32(0x40, 7);
/// assert_eq!(mem.read_u32(0x40), 7);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterMem {
    inner: Arc<Inner>,
}

impl ClusterMem {
    /// Allocates zeroed cluster memory for `topo`.
    pub fn new(topo: Topology) -> Self {
        let l1_words = (topo.num_banks() * topo.bank_words()) as usize;
        let l2_words = (Topology::L2_SIZE / 4) as usize;
        let inner = Inner {
            topo,
            l1: zeroed_atomics(l1_words),
            l2: zeroed_atomics(l2_words),
            wake: (0..topo.num_cores()).map(|_| AtomicBool::new(false)).collect(),
            wake_epoch: AtomicU64::new(0),
            eoc: AtomicU32::new(0),
            dma_src: AtomicU32::new(0),
            dma_dst: AtomicU32::new(0),
            l1_dirty: (0..l1_words.div_ceil(DIRTY_PAGE_WORDS)).map(|_| AtomicBool::new(false)).collect(),
            l2_dirty: (0..l2_words.div_ceil(DIRTY_PAGE_WORDS)).map(|_| AtomicBool::new(false)).collect(),
        };
        Self { inner: Arc::new(inner) }
    }

    /// The cluster geometry.
    pub fn topology(&self) -> Topology {
        self.inner.topo
    }

    /// Creates the hart-local view used by simulation drivers.
    pub fn core_view(&self, core: u32) -> CoreMem {
        assert!(core < self.inner.topo.num_cores(), "core {core} out of range");
        CoreMem { mem: self.clone(), core }
    }

    /// Loads every segment of an image: L2 addresses go to L2, L1 addresses
    /// (either view) to the banks.
    ///
    /// # Panics
    ///
    /// Panics if a segment falls outside the modelled regions.
    pub fn load_image(&self, image: &Image) {
        for seg in image.segments() {
            for (i, chunk) in seg.bytes.chunks(4).enumerate() {
                let addr = seg.base + 4 * u32::try_from(i).expect("segment fits");
                let mut word = [0u8; 4];
                word[..chunk.len()].copy_from_slice(chunk);
                self.write_u32(addr, u32::from_le_bytes(word));
            }
        }
    }

    fn word_slot(&self, addr: u32) -> Option<&AtomicU32> {
        let inner = &*self.inner;
        if let Some((bank, off)) = inner.topo.l1_slot(addr & !3) {
            return Some(&inner.l1[(bank * inner.topo.bank_words() + off) as usize]);
        }
        if addr >= Topology::L2_BASE {
            let off = (addr - Topology::L2_BASE) & !3;
            if off < Topology::L2_SIZE {
                return Some(&inner.l2[(off / 4) as usize]);
            }
        }
        None
    }

    /// Marks the L1 dirty page containing physical word `idx`. A plain
    /// relaxed store (no RMW): concurrent markers all write `true`.
    #[inline]
    pub(crate) fn mark_l1_dirty(&self, idx: usize) {
        self.inner.l1_dirty[idx / DIRTY_PAGE_WORDS].store(true, Ordering::Relaxed);
    }

    /// Marks the L2 dirty page containing word `idx`.
    #[inline]
    pub(crate) fn mark_l2_dirty(&self, idx: usize) {
        self.inner.l2_dirty[idx / DIRTY_PAGE_WORDS].store(true, Ordering::Relaxed);
    }

    /// [`word_slot`](Self::word_slot) for the *store* paths: identical
    /// lookup, plus marking the word's dirty page so
    /// [`reset`](Self::reset) knows to re-zero it. Every mutation of the
    /// word arrays — host writes, guest stores, AMOs, DMA — funnels
    /// through here (loads stay on the unmarked lookup).
    fn store_slot(&self, addr: u32) -> Option<&AtomicU32> {
        let inner = &*self.inner;
        if let Some((bank, off)) = inner.topo.l1_slot(addr & !3) {
            let idx = (bank * inner.topo.bank_words() + off) as usize;
            self.mark_l1_dirty(idx);
            return Some(&inner.l1[idx]);
        }
        if addr >= Topology::L2_BASE {
            let off = (addr - Topology::L2_BASE) & !3;
            if off < Topology::L2_SIZE {
                let idx = (off / 4) as usize;
                self.mark_l2_dirty(idx);
                return Some(&inner.l2[idx]);
            }
        }
        None
    }

    /// Count of currently dirty 4 KiB pages across both word arrays — the
    /// footprint the next `reset` will re-zero. Intended for
    /// observability (pool statistics, benchmarks, tests).
    pub fn dirty_pages(&self) -> usize {
        let inner = &*self.inner;
        inner.l1_dirty.iter().chain(inner.l2_dirty.iter()).filter(|f| f.load(Ordering::Relaxed)).count()
    }

    /// Returns this handle to the all-zero post-[`new`](Self::new) state
    /// by re-zeroing **only the dirty footprint**: every 4 KiB page a
    /// store path marked since construction (or the previous reset) is
    /// zeroed and its flag cleared; untouched pages are not read or
    /// written. Control/wake state (EOC, DMA registers, pending wakes,
    /// the wake notification epoch) is unconditionally cleared — it is
    /// O(cores), not O(arena).
    ///
    /// The caller must be the only party touching the arena (the pool
    /// guarantees this by recycling only un-aliased handles); dirty marks
    /// made by worker threads are handed over by whatever synchronization
    /// published the memory handle itself.
    pub(crate) fn reset(&self) {
        let inner = &*self.inner;
        for (words, dirty) in [(&inner.l1, &inner.l1_dirty), (&inner.l2, &inner.l2_dirty)] {
            for (page, flag) in dirty.iter().enumerate() {
                if flag.swap(false, Ordering::Relaxed) {
                    let start = page * DIRTY_PAGE_WORDS;
                    let end = (start + DIRTY_PAGE_WORDS).min(words.len());
                    for w in &words[start..end] {
                        w.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
        for w in &inner.wake {
            w.store(false, Ordering::SeqCst);
        }
        inner.wake_epoch.store(0, Ordering::SeqCst);
        inner.eoc.store(0, Ordering::SeqCst);
        inner.dma_src.store(0, Ordering::SeqCst);
        inner.dma_dst.store(0, Ordering::SeqCst);
    }

    /// `true` when this is the only live handle to the arena (no clone,
    /// core/turbo view or job still aliases it) — the pool's recycling
    /// precondition.
    pub(crate) fn is_unique(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }

    /// Host-side aligned word read.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses — host inspection of unmapped memory is
    /// a test bug.
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.word_slot(addr)
            .unwrap_or_else(|| panic!("read_u32: unmapped {addr:#010x}"))
            .load(Ordering::SeqCst)
    }

    /// Host-side aligned word write.
    ///
    /// # Panics
    ///
    /// Panics on unmapped addresses.
    pub fn write_u32(&self, addr: u32, value: u32) {
        self.store_slot(addr)
            .unwrap_or_else(|| panic!("write_u32: unmapped {addr:#010x}"))
            .store(value, Ordering::SeqCst);
    }

    /// Host-side u16 read (little-endian within the word).
    pub fn read_u16(&self, addr: u32) -> u16 {
        let word = self.read_u32(addr & !3);
        if addr & 2 == 0 {
            word as u16
        } else {
            (word >> 16) as u16
        }
    }

    /// Host-side u16 write.
    pub fn write_u16(&self, addr: u32, value: u16) {
        let slot = self.store_slot(addr & !3).unwrap_or_else(|| panic!("write_u16: unmapped {addr:#010x}"));
        let shift = (addr & 2) * 8;
        let mask = 0xffffu32 << shift;
        let _ = slot.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |old| {
            Some((old & !mask) | (u32::from(value) << shift))
        });
    }

    /// Value of the end-of-computation register (0 while running).
    pub fn eoc(&self) -> u32 {
        self.inner.eoc.load(Ordering::SeqCst)
    }

    /// Consumes a pending wake for `core`; returns whether one was pending.
    pub fn take_wake(&self, core: u32) -> bool {
        self.inner.wake[core as usize].swap(false, Ordering::SeqCst)
    }

    /// Returns whether a wake is pending without consuming it.
    pub fn wake_pending(&self, core: u32) -> bool {
        self.inner.wake[core as usize].load(Ordering::SeqCst)
    }

    /// Monotonic count of wake-all publications. An event-driven driver
    /// snapshots this and, when it changes, re-checks only its *parked*
    /// harts — the notification path that replaces per-step
    /// [`wake_pending`](Self::wake_pending) polling.
    pub fn wake_epoch(&self) -> u64 {
        self.inner.wake_epoch.load(Ordering::SeqCst)
    }

    fn wake_all_except(&self, writer: u32) {
        for (i, w) in self.inner.wake.iter().enumerate() {
            if i as u32 != writer {
                w.store(true, Ordering::SeqCst);
            }
        }
        self.inner.wake_epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn dma_copy(&self, len: u32) {
        let src = self.inner.dma_src.load(Ordering::SeqCst);
        let dst = self.inner.dma_dst.load(Ordering::SeqCst);
        for off in (0..len).step_by(4) {
            let w = self.read_u32(src + off);
            self.write_u32(dst + off, w);
        }
    }

    fn ctrl_load(&self, addr: u32) -> u32 {
        match addr {
            Topology::CTRL_EOC => self.inner.eoc.load(Ordering::SeqCst),
            Topology::CTRL_NUM_CORES => self.inner.topo.num_cores(),
            Topology::CTRL_DMA_SRC => self.inner.dma_src.load(Ordering::SeqCst),
            Topology::CTRL_DMA_DST => self.inner.dma_dst.load(Ordering::SeqCst),
            // The model's DMA completes synchronously: never busy.
            Topology::CTRL_DMA_BUSY => 0,
            _ => 0,
        }
    }

    fn ctrl_store(&self, addr: u32, value: u32, core: u32) {
        match addr {
            Topology::CTRL_EOC => self.inner.eoc.store(value, Ordering::SeqCst),
            Topology::CTRL_WAKE_ALL => self.wake_all_except(core),
            Topology::CTRL_DMA_SRC => self.inner.dma_src.store(value, Ordering::SeqCst),
            Topology::CTRL_DMA_DST => self.inner.dma_dst.store(value, Ordering::SeqCst),
            Topology::CTRL_DMA_LEN => self.dma_copy(value),
            _ => {}
        }
    }

    fn is_ctrl(addr: u32) -> bool {
        (Topology::CTRL_BASE..Topology::CTRL_BASE + Topology::CTRL_SIZE).contains(&addr)
    }
}

/// Per-domain partition of the cycle engine's arbitration timing state:
/// the `bank_free` / `port_free` reservation books of the banks and tile
/// ports one arbitration domain owns, indexed locally so each domain's
/// hot state is compact and exclusively its own during an epoch.
///
/// The single-domain engines use a [`whole_cluster`](Self::whole_cluster)
/// instance (bases 0), so every issue path arbitrates through the same
/// structure.
#[derive(Debug, Clone)]
pub(crate) struct DomainBanks {
    /// Cycle at which each owned bank is next free (local index).
    pub bank_free: Vec<u64>,
    /// Cycle at which each owned tile's outbound port is next free.
    pub port_free: Vec<u64>,
    bank_base: u32,
    tile_base: u32,
}

impl DomainBanks {
    /// Timing state covering every bank and tile (single-domain engines).
    pub fn whole_cluster(topo: Topology) -> Self {
        Self {
            bank_free: vec![0; topo.num_banks() as usize],
            port_free: vec![0; topo.num_tiles() as usize],
            bank_base: 0,
            tile_base: 0,
        }
    }

    /// Timing state of one arbitration domain (group).
    pub fn for_domain(topo: Topology, domain: u32) -> Self {
        Self {
            bank_free: vec![0; topo.banks_per_group() as usize],
            port_free: vec![0; topo.tiles_per_group() as usize],
            bank_base: domain * topo.banks_per_group(),
            tile_base: domain * topo.tiles_per_group(),
        }
    }

    /// Local index of a (globally numbered) owned bank.
    #[inline]
    pub fn local_bank(&self, bank: u32) -> usize {
        debug_assert!(bank >= self.bank_base, "bank {bank} not owned by this domain");
        (bank - self.bank_base) as usize
    }

    /// Local index of a (globally numbered) owned tile.
    #[inline]
    pub fn local_tile(&self, tile: u32) -> usize {
        debug_assert!(tile >= self.tile_base, "tile {tile} not owned by this domain");
        (tile - self.tile_base) as usize
    }
}

/// One deferred cross-domain memory operation, queued during an epoch and
/// replayed — bank grant, architectural effect, destination writeback —
/// at the next epoch boundary in global `(issue cycle, core id)` order.
///
/// `bank == u32::MAX` marks an L2/control access: those have a fixed
/// 16-cycle latency with no bank arbitration, so only the architectural
/// effect (load value / store / AMO / wake publication) is deferred; the
/// issuing core's timing was already exact at issue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct XRequest {
    /// Issue cycle (primary replay sort key).
    pub cycle: u64,
    /// Departure cycle after the issuing tile's port arbitration.
    pub depart: u64,
    /// Issuing hart (secondary replay sort key).
    pub core: u32,
    /// PC of the deferred instruction (trap attribution).
    pub pc: u32,
    /// Effective address (unmasked).
    pub addr: u32,
    /// Captured store value / AMO operand (loads: unused).
    pub value: u32,
    /// Target bank, or `u32::MAX` for L2/control.
    pub bank: u32,
    /// What to do at the target.
    pub op: MemOp,
    /// Destination register index, or [`terasim_iss::NO_REG`] when the
    /// writeback is suppressed (stores, `x0`, post-increment overwrite,
    /// failed `sc.w`).
    pub rd: u8,
    /// `rd`'s per-register write counter captured at issue; the replay
    /// touches `rd` (value and scoreboard) only while the counter is
    /// unchanged, so a later same-epoch WAW writer is never clobbered.
    pub wseq: u64,
    /// LSU queue slot claimed at issue (its completion time is corrected
    /// to the granted latency at replay).
    pub slot: u8,
    /// One-way hop latency to the target bank.
    pub hop: u8,
    /// `sc.w` only: whether the reservation check succeeded at issue.
    pub sc_success: bool,
}

/// One hart's view of the cluster memory; implements
/// [`Memory`](terasim_iss::Memory) with topology-aware latencies.
#[derive(Debug, Clone)]
pub struct CoreMem {
    mem: ClusterMem,
    core: u32,
}

impl CoreMem {
    /// The hart this view belongs to.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// The underlying shared memory.
    pub fn cluster(&self) -> &ClusterMem {
        &self.mem
    }
}

impl Memory for CoreMem {
    fn load(&mut self, addr: u32, size: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(size) {
            return Err(MemError::Misaligned { addr, size });
        }
        if ClusterMem::is_ctrl(addr) {
            return Ok(self.mem.ctrl_load(addr));
        }
        let slot = self.mem.word_slot(addr).ok_or(MemError::Unmapped { addr })?;
        let word = slot.load(Ordering::SeqCst);
        let shift = (addr & 3) * 8;
        Ok(match size {
            4 => word,
            2 => (word >> shift) & 0xffff,
            _ => (word >> shift) & 0xff,
        })
    }

    fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(size) {
            return Err(MemError::Misaligned { addr, size });
        }
        if ClusterMem::is_ctrl(addr) {
            self.mem.ctrl_store(addr, value, self.core);
            return Ok(());
        }
        let slot = self.mem.store_slot(addr).ok_or(MemError::Unmapped { addr })?;
        if size == 4 {
            slot.store(value, Ordering::SeqCst);
        } else {
            let shift = (addr & 3) * 8;
            let mask = (if size == 2 { 0xffffu32 } else { 0xffu32 }) << shift;
            let _ = slot.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |old| {
                Some((old & !mask) | ((value << shift) & mask))
            });
        }
        Ok(())
    }

    fn amo(&mut self, op: AmoOp, addr: u32, value: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, size: 4 });
        }
        let slot = self.mem.store_slot(addr).ok_or(MemError::Unmapped { addr })?;
        let old = slot
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |old| Some(amo_apply(op, old, value)))
            .expect("fetch_update closure never fails");
        Ok(old)
    }

    fn latency(&self, addr: u32) -> u32 {
        self.mem.topology().access_latency(self.core, addr)
    }
}

/// Fast view of the cluster memory used by the event-driven and
/// epoch-sharded cycle engines.
///
/// Same bytes and bit-identical values as [`CoreMem`], with two
/// engine-local optimizations:
///
/// * **Relaxed atomic orderings** (and plain read-modify-write instead of
///   CAS loops for sub-word stores and AMOs).
/// * **Shift-based bank decoding** when the topology's divisors are
///   powers of two (they are for every TeraPool configuration), instead
///   of the division/modulo chain in [`Topology::l1_slot`].
///
/// These are sound only under the cycle engines' access discipline, which
/// guarantees no location is ever written concurrently:
///
/// * single-domain engines run every hart on one host thread;
/// * the epoch-sharded engine lets a domain touch **only its own group's
///   banks** during an epoch (cross-group and all L2/control accesses
///   are deferred into [`XRequest`] mailboxes and applied single-threaded
///   at the epoch boundary, which the domains' synchronization barrier
///   orders against all phase reads/writes).
///
/// Never hand this to code outside that discipline — use
/// [`ClusterMem::core_view`] there.
#[derive(Debug, Clone)]
pub(crate) struct TurboMem {
    mem: ClusterMem,
    core: u32,
    decode: L1Decode,
    /// One-entry decode memo primed by the cycle engine's bank
    /// arbitration: the word address it just decoded and the physical L1
    /// word index it decoded to. The mapping is a pure function of the
    /// address, so a stale entry is never *wrong*, only useless.
    primed_addr: u32,
    primed_idx: u32,
}

impl ClusterMem {
    /// Creates the single-threaded fast view for the cycle engine.
    pub(crate) fn turbo_view(&self, core: u32) -> TurboMem {
        assert!(core < self.inner.topo.num_cores(), "core {core} out of range");
        TurboMem {
            mem: self.clone(),
            core,
            decode: L1Decode::new(self.inner.topo),
            primed_addr: u32::MAX,
            primed_idx: 0,
        }
    }
}

impl TurboMem {
    /// Primes the one-entry decode memo with an L1 mapping the caller
    /// just computed (`addr` word-aligned, `(bank, off)` from the same
    /// [`L1Decode`] this view uses).
    #[inline]
    pub(crate) fn prime(&mut self, addr: u32, bank: u32, off: u32) {
        self.primed_addr = addr;
        self.primed_idx = self.decode.phys_index(bank, off) as u32;
    }

    /// Word slot lookup, bit-identical to [`ClusterMem::word_slot`].
    #[inline]
    fn slot(&self, addr: u32) -> Option<&AtomicU32> {
        let inner = &*self.mem.inner;
        if addr & !3 == self.primed_addr {
            return Some(&inner.l1[self.primed_idx as usize]);
        }
        if let Some((bank, off)) = self.decode.l1_slot(addr & !3) {
            return Some(&inner.l1[self.decode.phys_index(bank, off)]);
        }
        if addr >= Topology::L2_BASE {
            let off = (addr - Topology::L2_BASE) & !3;
            if off < Topology::L2_SIZE {
                return Some(&inner.l2[(off / 4) as usize]);
            }
        }
        None
    }

    /// [`slot`](Self::slot) for the store paths: same lookup (primed memo
    /// included), plus the dirty-page mark — the engine-fast counterpart
    /// of [`ClusterMem::store_slot`].
    #[inline]
    fn store_slot(&self, addr: u32) -> Option<&AtomicU32> {
        let inner = &*self.mem.inner;
        if addr & !3 == self.primed_addr {
            self.mem.mark_l1_dirty(self.primed_idx as usize);
            return Some(&inner.l1[self.primed_idx as usize]);
        }
        if let Some((bank, off)) = self.decode.l1_slot(addr & !3) {
            let idx = self.decode.phys_index(bank, off);
            self.mem.mark_l1_dirty(idx);
            return Some(&inner.l1[idx]);
        }
        if addr >= Topology::L2_BASE {
            let off = (addr - Topology::L2_BASE) & !3;
            if off < Topology::L2_SIZE {
                let idx = (off / 4) as usize;
                self.mem.mark_l2_dirty(idx);
                return Some(&inner.l2[idx]);
            }
        }
        None
    }
}

impl Memory for TurboMem {
    fn load(&mut self, addr: u32, size: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(size) {
            return Err(MemError::Misaligned { addr, size });
        }
        if ClusterMem::is_ctrl(addr) {
            return Ok(self.mem.ctrl_load(addr));
        }
        let slot = self.slot(addr).ok_or(MemError::Unmapped { addr })?;
        let word = slot.load(Ordering::Relaxed);
        let shift = (addr & 3) * 8;
        Ok(match size {
            4 => word,
            2 => (word >> shift) & 0xffff,
            _ => (word >> shift) & 0xff,
        })
    }

    fn store(&mut self, addr: u32, size: u32, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(size) {
            return Err(MemError::Misaligned { addr, size });
        }
        if ClusterMem::is_ctrl(addr) {
            self.mem.ctrl_store(addr, value, self.core);
            return Ok(());
        }
        let slot = self.store_slot(addr).ok_or(MemError::Unmapped { addr })?;
        if size == 4 {
            slot.store(value, Ordering::Relaxed);
        } else {
            let shift = (addr & 3) * 8;
            let mask = (if size == 2 { 0xffffu32 } else { 0xffu32 }) << shift;
            // Single-threaded: plain read-modify-write, no CAS loop.
            let old = slot.load(Ordering::Relaxed);
            slot.store((old & !mask) | ((value << shift) & mask), Ordering::Relaxed);
        }
        Ok(())
    }

    fn amo(&mut self, op: AmoOp, addr: u32, value: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, size: 4 });
        }
        let slot = self.store_slot(addr).ok_or(MemError::Unmapped { addr })?;
        let old = slot.load(Ordering::Relaxed);
        slot.store(amo_apply(op, old, value), Ordering::Relaxed);
        Ok(old)
    }

    fn latency(&self, addr: u32) -> u32 {
        self.mem.topology().access_latency(self.core, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbo_view_matches_core_view() {
        // Values and error behaviour must be bit-identical to CoreMem.
        let mem = ClusterMem::new(Topology::scaled(16));
        let mut a = mem.core_view(2);
        let mut b = mem.turbo_view(2);
        for (addr, value) in [
            (0x0u32, 0xdead_beefu32),
            (0x104, 1),
            (Topology::SEQ_BASE + 0x40, 7),
            (Topology::SEQ_BASE + Topology::SEQ_STRIDE + 0x10, 9),
            (Topology::L2_BASE + 0x2000, 0xffff_0001),
        ] {
            b.store(addr, 4, value).unwrap();
            assert_eq!(a.load(addr, 4).unwrap(), value, "{addr:#x} via core view");
            assert_eq!(b.load(addr, 4).unwrap(), value, "{addr:#x} via turbo view");
        }
        // Sub-word merge and AMO.
        b.store(0x200, 2, 0xabcd).unwrap();
        b.store(0x202, 1, 0x7f).unwrap();
        assert_eq!(a.load(0x200, 4).unwrap(), 0x007f_abcd);
        assert_eq!(b.amo(AmoOp::Add, 0x200, 1).unwrap(), 0x007f_abcd);
        assert_eq!(a.load(0x200, 4).unwrap(), 0x007f_abce);
        // Unmapped and misaligned errors match.
        assert_eq!(a.load(0x3000_0000, 4).unwrap_err(), b.load(0x3000_0000, 4).unwrap_err());
        assert_eq!(a.load(0x101, 4).unwrap_err(), b.load(0x101, 4).unwrap_err());
        // Control region goes through the same registers.
        assert_eq!(b.load(Topology::CTRL_NUM_CORES, 4).unwrap(), 16);
        // Latency model unchanged.
        assert_eq!(Memory::latency(&b, 0x40), Memory::latency(&a, 0x40));
    }

    #[test]
    fn views_alias_physical_banks() {
        let mem = ClusterMem::new(Topology::scaled(8));
        // Interleaved word 0 is bank 0 offset 0; sequential tile 0 word 0 too.
        mem.write_u32(0, 0xabcd_1234);
        assert_eq!(mem.read_u32(Topology::SEQ_BASE), 0xabcd_1234);
    }

    #[test]
    fn subword_stores_are_isolated() {
        let mem = ClusterMem::new(Topology::scaled(8));
        let mut a = mem.core_view(0);
        let mut b = mem.core_view(1);
        a.store(0x100, 2, 0x1111).unwrap();
        b.store(0x102, 2, 0x2222).unwrap();
        assert_eq!(mem.read_u32(0x100), 0x2222_1111);
    }

    #[test]
    fn ctrl_region() {
        let topo = Topology::scaled(16);
        let mem = ClusterMem::new(topo);
        let mut v = mem.core_view(3);
        assert_eq!(v.load(Topology::CTRL_NUM_CORES, 4).unwrap(), 16);
        v.store(Topology::CTRL_EOC, 4, 0x55).unwrap();
        assert_eq!(mem.eoc(), 0x55);
        // Wake-all from core 3: everyone except 3 has a pending wake.
        v.store(Topology::CTRL_WAKE_ALL, 4, 1).unwrap();
        assert!(!mem.wake_pending(3));
        assert!(mem.take_wake(7));
        assert!(!mem.take_wake(7), "wake is one-shot");
    }

    #[test]
    fn dma_copies_l2_to_l1() {
        let mem = ClusterMem::new(Topology::scaled(8));
        for i in 0..8u32 {
            mem.write_u32(Topology::L2_BASE + 0x1000 + i * 4, 100 + i);
        }
        let mut v = mem.core_view(0);
        v.store(Topology::CTRL_DMA_SRC, 4, Topology::L2_BASE + 0x1000).unwrap();
        v.store(Topology::CTRL_DMA_DST, 4, 0x200).unwrap();
        v.store(Topology::CTRL_DMA_LEN, 4, 32).unwrap();
        assert_eq!(v.load(Topology::CTRL_DMA_BUSY, 4).unwrap(), 0);
        for i in 0..8u32 {
            assert_eq!(mem.read_u32(0x200 + i * 4), 100 + i);
        }
    }

    #[test]
    fn latency_matches_topology() {
        let topo = Topology::terapool();
        let mem = ClusterMem::new(topo);
        let near = mem.core_view(0);
        assert_eq!(near.latency(Topology::SEQ_BASE), 1);
        assert_eq!(near.latency(Topology::SEQ_BASE + 64 * Topology::SEQ_STRIDE), 9);
        assert_eq!(near.latency(Topology::L2_BASE), 16);
    }

    #[test]
    fn reset_rezeroes_exactly_the_dirty_footprint() {
        let mem = ClusterMem::new(Topology::scaled(8));
        assert_eq!(mem.dirty_pages(), 0, "fresh arena starts clean");
        // Dirty through every store path: host word/halfword, core view
        // (full, sub-word, AMO), turbo view (full, sub-word, AMO, primed).
        mem.write_u32(0x40, 0xdead_beef);
        mem.write_u16(Topology::L2_BASE + 0x9002, 0xabcd);
        {
            let mut c = mem.core_view(1);
            c.store(Topology::SEQ_BASE + 0x100, 4, 7).unwrap();
            c.store(Topology::SEQ_BASE + 0x201, 1, 0x5a).unwrap();
            c.amo(AmoOp::Add, 0x80, 3).unwrap();
            let mut t = mem.turbo_view(2);
            t.store(Topology::L2_BASE + 0x4000, 4, 11).unwrap();
            t.store(0x92, 2, 0x1234).unwrap();
            t.amo(AmoOp::Or, Topology::SEQ_BASE + 0x300, 0xf0).unwrap();
            // Primed-memo store path.
            if let Some((bank, off)) = mem.topology().l1_slot(0x40) {
                t.prime(0x40, bank, off);
            }
            t.store(0x40, 4, 1).unwrap();
            // Control stores (reset unconditionally, not page-tracked).
            c.store(Topology::CTRL_EOC, 4, 9).unwrap();
            c.store(Topology::CTRL_WAKE_ALL, 4, 1).unwrap();
        }
        assert!(mem.dirty_pages() > 0);
        mem.reset();
        assert_eq!(mem.dirty_pages(), 0, "reset consumes the dirty set");
        for addr in [
            0x40,
            0x80,
            0x90,
            Topology::SEQ_BASE + 0x100,
            Topology::SEQ_BASE + 0x200,
            Topology::SEQ_BASE + 0x300,
            Topology::L2_BASE + 0x4000,
            Topology::L2_BASE + 0x9000,
        ] {
            assert_eq!(mem.read_u32(addr), 0, "{addr:#x} must be re-zeroed");
        }
        assert_eq!(mem.eoc(), 0, "control state cleared");
        assert_eq!(mem.wake_epoch(), 0);
        for core in 0..8 {
            assert!(!mem.wake_pending(core), "pending wake survived reset");
        }
        // Loads must not mark.
        let _ = mem.read_u32(0x1000);
        let mut v = mem.core_view(0);
        let _ = v.load(Topology::L2_BASE + 0x100, 4).unwrap();
        assert_eq!(mem.dirty_pages(), 0, "loads never dirty a page");
    }

    #[test]
    fn uniqueness_tracks_live_views() {
        let mem = ClusterMem::new(Topology::scaled(8));
        assert!(mem.is_unique());
        let view = mem.core_view(0);
        assert!(!mem.is_unique(), "core view aliases the arena");
        drop(view);
        assert!(mem.is_unique());
    }

    #[test]
    fn amo_is_atomic_across_views() {
        let mem = ClusterMem::new(Topology::scaled(8));
        let n = 64;
        std::thread::scope(|s| {
            for core in 0..8 {
                let mem = mem.clone();
                s.spawn(move || {
                    let mut v = mem.core_view(core);
                    for _ in 0..n {
                        v.amo(AmoOp::Add, 0x80, 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(mem.read_u32(0x80), 8 * n);
    }
}
