//! Property-based tests for the softfloat formats.

use proptest::prelude::*;
use terasim_softfloat::{mini_from_f32_bits, mini_to_f32_bits, FloatFormat, F16, F8};

const HALF: FloatFormat = FloatFormat::new(5, 10);
const E4M3: FloatFormat = FloatFormat::new(4, 3);
const E5M2: FloatFormat = FloatFormat::new(5, 2);

fn finite_f32() -> impl Strategy<Value = f32> {
    any::<f32>().prop_filter("finite", |x| x.is_finite())
}

fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_map(F16::from_bits).prop_filter("finite", |x| x.is_finite())
}

fn finite_f8() -> impl Strategy<Value = F8> {
    any::<u8>().prop_map(F8::from_bits).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// Conversion through the generic kernel is monotone: x <= y implies
    /// mini(x) <= mini(y) as real values.
    #[test]
    fn conversion_is_monotone(x in finite_f32(), y in finite_f32()) {
        for fmt in [HALF, E4M3, E5M2] {
            let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
            let flo = mini_to_f32_bits(mini_from_f32_bits(lo, fmt), fmt);
            let fhi = mini_to_f32_bits(mini_from_f32_bits(hi, fmt), fmt);
            prop_assert!(flo <= fhi, "monotonicity violated for {lo} <= {hi} in {fmt:?}");
        }
    }

    /// Rounding never moves by more than one ulp: the converted value is one
    /// of the two grid values bracketing x.
    #[test]
    fn conversion_is_faithful(x in finite_f32()) {
        for fmt in [HALF, E4M3, E5M2] {
            let packed = mini_from_f32_bits(x, fmt);
            let back = mini_to_f32_bits(packed, fmt);
            if back.is_finite() {
                // Neighbouring representable values (same sign handling via ±1 on magnitude).
                let mag = packed & !(1 << (fmt.total_bits() - 1));
                let down = if mag == 0 {
                    // crossing zero: neighbour is smallest value of opposite sign
                    mini_to_f32_bits((packed ^ (1 << (fmt.total_bits() - 1))) | 1, fmt)
                } else {
                    mini_to_f32_bits(packed - 1, fmt)
                };
                let up = mini_to_f32_bits(packed + 1, fmt);
                let lo = back.min(down.min(up));
                let hi = back.max(down.max(up));
                prop_assert!(
                    (lo <= x && x <= hi) || back == x,
                    "{x} converted to {back}, neighbours [{down}, {up}] in {fmt:?}"
                );
            }
        }
    }

    /// f16 addition via f32 equals a single rounding of the exact sum
    /// (computed in f64, which is exact for binary16 operands).
    #[test]
    fn f16_add_correctly_rounded(a in finite_f16(), b in finite_f16()) {
        let via_op = a + b;
        let exact = a.to_f64() + b.to_f64(); // exact: 11-bit significands
        let single = F16::from_f64(exact);
        prop_assert_eq!(via_op, single);
    }

    /// f16 multiplication via f32 equals a single rounding of the exact
    /// product.
    #[test]
    fn f16_mul_correctly_rounded(a in finite_f16(), b in finite_f16()) {
        let via_op = a * b;
        let exact = a.to_f64() * b.to_f64(); // exact: 22-bit product
        let single = F16::from_f64(exact);
        prop_assert_eq!(via_op, single);
    }

    /// Same for E4M3.
    #[test]
    fn f8_ops_correctly_rounded(a in finite_f8(), b in finite_f8()) {
        prop_assert_eq!(a + b, F8::from_f64(a.to_f64() + b.to_f64()));
        prop_assert_eq!(a * b, F8::from_f64(a.to_f64() * b.to_f64()));
        prop_assert_eq!(a - b, F8::from_f64(a.to_f64() - b.to_f64()));
    }

    /// Negation is an exact involution and matches subtraction from zero
    /// except for the IEEE -0 edge case.
    #[test]
    fn neg_involution(a in finite_f16()) {
        prop_assert_eq!(-(-a), a);
        prop_assert_eq!((-a).to_f32(), -(a.to_f32()));
    }

    /// Widening F8 -> F16 preserves the value exactly; narrowing back is the
    /// identity on representable values.
    #[test]
    fn f8_widen_narrow_roundtrip(a in finite_f8()) {
        let wide = F16::from(a);
        prop_assert_eq!(wide.to_f32(), a.to_f32());
        prop_assert_eq!(F8::from_f16(wide), a);
    }

    /// from_f64 never double-rounds: it agrees with exhaustive neighbour
    /// comparison on the f16 grid.
    #[test]
    fn from_f64_nearest(x in any::<f64>().prop_filter("finite", |x| x.is_finite() && x.abs() < 1e6)) {
        let r = F16::from_f64(x);
        if r.is_finite() {
            let err = (r.to_f64() - x).abs();
            let up = F16::from_bits(r.to_bits().wrapping_add(1));
            let down = F16::from_bits(r.to_bits().wrapping_sub(1));
            for n in [up, down] {
                if n.is_finite() {
                    let nerr = (n.to_f64() - x).abs();
                    prop_assert!(err <= nerr, "{x}: chose {r:?} but {n:?} is closer");
                }
            }
        }
    }

    /// The complex MAC primitives agree with exact arithmetic whenever the
    /// values involved are small integers (no rounding in any path).
    #[test]
    fn cmac_exact_on_small_ints(
        ar in -8i32..8, ai in -8i32..8,
        br in -8i32..8, bi in -8i32..8,
        cr in -8i32..8, ci in -8i32..8,
    ) {
        use terasim_softfloat::ops;
        let a = [F16::from_f32(ar as f32), F16::from_f32(ai as f32)];
        let b = [F16::from_f32(br as f32), F16::from_f32(bi as f32)];
        let acc = [F16::from_f32(cr as f32), F16::from_f32(ci as f32)];
        let want_re = (cr + ar * br - ai * bi) as f32;
        let want_im = (ci + ar * bi + ai * br) as f32;

        let m = ops::cmac_h(acc, a, b);
        prop_assert_eq!([m[0].to_f32(), m[1].to_f32()], [want_re, want_im]);
        let c = ops::vfcdotpex_s_h(acc, a, b);
        prop_assert_eq!([c[0].to_f32(), c[1].to_f32()], [want_re, want_im]);
        let re = ops::vfndotpex_s_h(acc[0].to_f32(), a, b);
        let im = ops::vfdotpex_s_h(acc[1].to_f32(), a, ops::swap_h(b));
        prop_assert_eq!([re, im], [want_re, want_im]);
    }
}
