//! Differential validation of the softfloat fast paths against the
//! retained reference implementations (`ops::reference`, built only on
//! the generic converters in `convert`).
//!
//! * **Exhaustive** over all 65 536 binary16 encodings for the unary
//!   table-driven ops (widening, sqrt, reciprocal) and over the full
//!   binary16 grid (midpoints and their neighbours) for the specialized
//!   narrowing converters — every rounding decision is exercised.
//! * **Seeded random sweeps** for the binary/fused ops (add, mul, div,
//!   FMA, complex MACs), with the operand generator biased towards the
//!   special encodings the early-outs key on (signed zeros, Inf, NaN
//!   with varied payloads, subnormals).

use terasim_softfloat::ops::{self, reference};
use terasim_softfloat::{mini_from_f32_bits, mini_from_f64_bits, F16, F8};

/// Small deterministic xorshift64* generator (no external dependencies).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A binary16 pattern biased towards special encodings.
    fn f16(&mut self) -> F16 {
        let r = self.next();
        let bits = match r % 8 {
            0 => (r >> 32) as u16 & 0x8000,            // signed zero
            1 => 0x7c00 | ((r >> 32) as u16 & 0x8000), // signed Inf
            2 => 0x7c00 | ((r >> 32) as u16 & 0x83ff), // NaN, any payload
            3 => (r >> 32) as u16 & 0x83ff,            // subnormal/zero
            4 => 0x7800 | ((r >> 32) as u16 & 0x87ff), // near-max magnitude
            _ => (r >> 32) as u16,                     // anything
        };
        F16::from_bits(bits)
    }

    /// A binary8 pattern biased towards special encodings.
    fn f8(&mut self) -> F8 {
        let r = self.next();
        let bits = match r % 8 {
            0 => (r >> 32) as u8 & 0x80,
            1 => 0x7c | ((r >> 32) as u8 & 0x80),
            2 => 0x7c | ((r >> 32) as u8 & 0x83),
            3 => (r >> 32) as u8 & 0x83,
            _ => (r >> 32) as u8,
        };
        F8::from_bits(bits)
    }
}

/// Bit-compare that treats the two values as raw encodings.
#[track_caller]
fn same_h(fast: F16, slow: F16, what: &str) {
    assert_eq!(
        fast.to_bits(),
        slow.to_bits(),
        "{what}: fast {:#06x} != ref {:#06x}",
        fast.to_bits(),
        slow.to_bits()
    );
}

/// Bit-compare for *arithmetic results*: when both sides are NaN they are
/// considered equal. Both implementations canonicalize NaN payloads, but
/// the NaN *sign* coming out of host `f32`/`f64` arithmetic depends on
/// operand order in the generated code, which two separately compiled
/// (yet semantically identical) expressions are not guaranteed to share.
#[track_caller]
fn same_arith_h(fast: F16, slow: F16, what: &str) {
    if fast.is_nan() && slow.is_nan() {
        return;
    }
    same_h(fast, slow, what);
}

/// Lane-pair version of [`same_arith_h`].
#[track_caller]
fn same2_arith_h(fast: [F16; 2], slow: [F16; 2], what: &str) {
    same_arith_h(fast[0], slow[0], what);
    same_arith_h(fast[1], slow[1], what);
}

/// Binary8 lane-pair arithmetic compare with the same NaN equivalence.
#[track_caller]
fn same2_arith_b(fast: [F8; 2], slow: [F8; 2], what: &str) {
    for (f, s) in fast.iter().zip(&slow) {
        if f.is_nan() && s.is_nan() {
            continue;
        }
        assert_eq!(f.to_bits(), s.to_bits(), "{what}: fast {:#04x} != ref {:#04x}", f.to_bits(), s.to_bits());
    }
}

#[test]
fn exhaustive_f16_unary_sweep() {
    for bits in 0..=u16::MAX {
        let x = F16::from_bits(bits);
        // Widening must agree bit-for-bit (including NaN canonicalization).
        assert_eq!(x.to_f32().to_bits(), reference::h_to_f32(x).to_bits(), "to_f32 of {bits:#06x}");
        assert_eq!(x.to_f64().to_bits(), reference::h_to_f64(x).to_bits(), "to_f64 of {bits:#06x}");
        same_h(x.sqrt(), reference::sqrt_h(x), "sqrt");
        same_h(x.recip(), reference::recip_h(x), "recip");
        same_h(F16::ONE / x, reference::recip_h(x), "1/x through Div");
        // Narrowing the exact widened value must round-trip identically.
        same_h(F16::from_f32(x.to_f32()), reference::h_from_f32(reference::h_to_f32(x)), "f32 roundtrip");
        same_h(F16::from_f64(x.to_f64()), reference::h_from_f64(reference::h_to_f64(x)), "f64 roundtrip");
    }
}

#[test]
fn exhaustive_f8_unary_sweep() {
    for bits in 0..=u8::MAX {
        let x = F8::from_bits(bits);
        assert_eq!(x.to_f32().to_bits(), reference::b_to_f32(x).to_bits(), "f8 to_f32 of {bits:#04x}");
    }
}

/// Every rounding decision of the specialized `f32 -> f16` converter:
/// for each pair of adjacent binary16 magnitudes, probe the midpoint and
/// its immediate `f32` neighbours (plus the half-subnormal underflow and
/// overflow boundaries swept as part of the grid).
#[test]
fn f32_narrowing_exhaustive_grid() {
    let check = |x: f32| {
        assert_eq!(
            u32::from(F16::from_f32(x).to_bits()),
            mini_from_f32_bits(x, F16::FORMAT),
            "narrowing {x:e} ({:#010x})",
            x.to_bits()
        );
    };
    for mag in 0..0x7c00u16 {
        // Adjacent magnitudes on the binary16 grid (mag+1 may be Inf).
        let lo = reference::h_to_f32(F16::from_bits(mag));
        let hi = reference::h_to_f32(F16::from_bits(mag + 1));
        let mid = (f64::from(lo) + f64::from(hi)) / 2.0; // exact in f64
        let mid32 = mid as f32; // exact: midpoints carry ≤ 12 significand bits
        for x in [lo, mid32, f32::from_bits(mid32.to_bits() - 1), f32::from_bits(mid32.to_bits() + 1), hi] {
            check(x);
            check(-x);
        }
    }
    // NaN payloads collapse to the canonical quiet NaN, sign preserved.
    for payload in [1u32, 0x7_ffff, 0x40_0000, 0x23_4567] {
        check(f32::from_bits(0x7f80_0000 | payload));
        check(f32::from_bits(0xff80_0000 | payload));
    }
}

/// Same grid for the single-rounding `f64 -> f16` converter; the offsets
/// below the midpoint exercise the sticky bits an `f64 -> f32 -> f16`
/// double rounding would lose.
#[test]
fn f64_narrowing_exhaustive_grid() {
    let check = |x: f64| {
        assert_eq!(
            u32::from(F16::from_f64(x).to_bits()),
            mini_from_f64_bits(x, F16::FORMAT),
            "narrowing {x:e} ({:#018x})",
            x.to_bits()
        );
    };
    for mag in 0..0x7c00u16 {
        let lo = reference::h_to_f64(F16::from_bits(mag));
        let hi = reference::h_to_f64(F16::from_bits(mag + 1));
        let mid = (lo + hi) / 2.0;
        for x in [
            lo,
            mid,
            f64::from_bits(mid.to_bits() - 1),
            f64::from_bits(mid.to_bits() + 1),
            mid - mid.abs() * 1e-14,
            hi,
        ] {
            check(x);
            check(-x);
        }
    }
    for payload in [1u64, 0xf_ffff_ffff_ffff, 0x8_0000_0000_0000] {
        check(f64::from_bits(0x7ff0_0000_0000_0000 | payload));
        check(f64::from_bits(0xfff0_0000_0000_0000 | payload));
    }
}

#[test]
fn random_f32_and_f64_narrowing_sweep() {
    let mut rng = Rng::new(0x5eed_f00d);
    for _ in 0..1_000_000 {
        let x32 = f32::from_bits(rng.next() as u32);
        assert_eq!(
            u32::from(F16::from_f32(x32).to_bits()),
            mini_from_f32_bits(x32, F16::FORMAT),
            "f32 narrow {:#010x}",
            x32.to_bits()
        );
        let x64 = f64::from_bits(rng.next());
        assert_eq!(
            u32::from(F16::from_f64(x64).to_bits()),
            mini_from_f64_bits(x64, F16::FORMAT),
            "f64 narrow {:#018x}",
            x64.to_bits()
        );
    }
}

#[test]
fn random_f16_binary_op_sweep() {
    let mut rng = Rng::new(0xdead_beef);
    for _ in 0..500_000 {
        let (a, b, c) = (rng.f16(), rng.f16(), rng.f16());
        same_arith_h(a + b, reference::h_from_f32(reference::h_to_f32(a) + reference::h_to_f32(b)), "add");
        same_arith_h(a - b, reference::h_from_f32(reference::h_to_f32(a) - reference::h_to_f32(b)), "sub");
        same_arith_h(a * b, reference::h_from_f32(reference::h_to_f32(a) * reference::h_to_f32(b)), "mul");
        same_arith_h(a / b, reference::h_from_f32(reference::h_to_f32(a) / reference::h_to_f32(b)), "div");
        same_arith_h(a.mul_add(b, c), reference::mul_add_h(a, b, c), "fma");
    }
}

#[test]
fn random_f16_complex_mac_sweep() {
    let mut rng = Rng::new(0xc0ff_ee11);
    for _ in 0..300_000 {
        let acc = [rng.f16(), rng.f16()];
        let a = [rng.f16(), rng.f16()];
        let b = [rng.f16(), rng.f16()];
        same2_arith_h(ops::cmac_h(acc, a, b), reference::cmac_h(acc, a, b), "cmac_h");
        same2_arith_h(ops::cmac_conj_h(acc, a, b), reference::cmac_conj_h(acc, a, b), "cmac_conj_h");
        same2_arith_h(ops::vfcdotpex_s_h(acc, a, b), reference::vfcdotpex_s_h(acc, a, b), "vfcdotpex_s_h");
        same2_arith_h(
            ops::vfcdotpex_conj_s_h(acc, a, b),
            reference::vfcdotpex_conj_s_h(acc, a, b),
            "vfcdotpex_conj_s_h",
        );
    }
}

#[test]
fn random_f8_complex_mac_sweep() {
    let mut rng = Rng::new(0x0dd_ba11);
    for _ in 0..300_000 {
        let acc = [rng.f8(), rng.f8()];
        let a = [rng.f8(), rng.f8()];
        let b = [rng.f8(), rng.f8()];
        same2_arith_b(ops::cmac_b(acc, a, b), reference::cmac_b(acc, a, b), "cmac_b");
        same2_arith_b(ops::cmac_conj_b(acc, a, b), reference::cmac_conj_b(acc, a, b), "cmac_conj_b");
    }
}

/// The early-out shapes specifically: zero multiplicand words against
/// every accumulator class, and special lanes that must force the full
/// path.
#[test]
fn early_out_boundary_cases() {
    let zeros =
        [[F16::ZERO, F16::ZERO], [-F16::ZERO, F16::ZERO], [F16::ZERO, -F16::ZERO], [-F16::ZERO, -F16::ZERO]];
    let others = [
        [F16::from_f32(1.5), F16::from_f32(-2.25)],
        [F16::INFINITY, F16::ONE],
        [F16::NAN, F16::ONE],
        [F16::ZERO, F16::from_f32(3.0)],
        [-F16::ZERO, -F16::ZERO],
        [F16::from_bits(0x0001), F16::from_bits(0x8001)], // subnormals
    ];
    let accs = [
        [F16::from_f32(4.0), F16::from_f32(-0.5)],
        [F16::ZERO, F16::from_f32(2.0)],
        [-F16::ZERO, -F16::ZERO],
        [F16::INFINITY, F16::NAN],
    ];
    for acc in accs {
        for z in zeros {
            for o in others {
                for (a, b) in [(z, o), (o, z)] {
                    same2_arith_h(ops::cmac_h(acc, a, b), reference::cmac_h(acc, a, b), "cmac_h");
                    same2_arith_h(
                        ops::cmac_conj_h(acc, a, b),
                        reference::cmac_conj_h(acc, a, b),
                        "cmac_conj_h",
                    );
                    same2_arith_h(
                        ops::vfcdotpex_s_h(acc, a, b),
                        reference::vfcdotpex_s_h(acc, a, b),
                        "vfcdotpex_s_h",
                    );
                    same2_arith_h(
                        ops::vfcdotpex_conj_s_h(acc, a, b),
                        reference::vfcdotpex_conj_s_h(acc, a, b),
                        "vfcdotpex_conj_s_h",
                    );
                }
            }
        }
    }
}
