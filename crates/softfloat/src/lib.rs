//! Software floating-point formats used by the TeraPool-SDR DUT model.
//!
//! The paper's Snitch cores compute on narrow floating-point types stored in
//! the integer register file (`zfinx`/`zhinx` and the SmallFloat/MiniFloat
//! SIMD extensions). This crate implements those formats in software so that
//! both the instruction-set simulator (`terasim-iss`) and the native
//! fixed-precision detector models (`terasim-phy`) share *one* bit-exact
//! definition of the DUT arithmetic:
//!
//! * [`F16`] — IEEE 754 binary16 (1s/5e/10m), the `zhinx` scalar type.
//! * [`F8`] — the SmallFloat binary8 minifloat (1s/5e/2m, "quarter
//!   precision"). The paper prints "1b sign, 4b exponent, 2b mantissa",
//!   which does not fill a byte and contradicts its SmallFloat citation;
//!   we follow the cited 1-5-2 layout (`DESIGN.md`).
//! * [`ops`] — the SDR dot-product primitives: widening dot products
//!   (`wDotp`, 8b→16b and 16b→32b accumulation) and the complex
//!   dot-product/MAC (`CDotp`, 32-bit internal precision, 16-bit
//!   accumulators) exactly as used by the five MMSE kernel precisions.
//!
//! # Rounding semantics
//!
//! All scalar operations round to nearest, ties to even (RNE). `+`, `-`,
//! `*`, `/` and `sqrt` on [`F16`] and [`F8`] are *correctly rounded*: they
//! are evaluated in `f32`, which carries at least `2p + 2` significand bits
//! for both formats, so the double rounding through `f32` is exact
//! (Figueroa's theorem). Fused multiply-add is defined as evaluation in
//! `f64` followed by a single RNE conversion; this is the reference
//! semantics for the DUT and is used consistently by the ISS and the native
//! models.
//!
//! # Examples
//!
//! ```
//! use terasim_softfloat::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(0.25);
//! assert_eq!((a + b).to_f32(), 1.75);
//! assert_eq!(F16::from_f32(1.0) / F16::from_f32(3.0), F16::from_bits(0x3555));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod convert;
mod f16;
mod f8;
pub mod ops;
mod tables;

pub use convert::{mini_from_f32_bits, mini_from_f64_bits, mini_to_f32_bits, FloatFormat};
pub use f16::F16;
pub use f8::F8;
