//! IEEE 754 binary16 ("half precision"), the `zhinx` scalar type.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

use crate::convert::FloatFormat;
use crate::tables;

/// The binary16 interchange format.
pub(crate) const FMT: FloatFormat = FloatFormat::new(5, 10);

/// An IEEE 754 binary16 value (1 sign, 5 exponent, 10 mantissa bits).
///
/// Arithmetic rounds to nearest, ties to even, and is correctly rounded for
/// `+`, `-`, `*`, `/` and [`sqrt`](F16::sqrt) (see the crate-level docs).
/// The type is a plain `u16` wrapper, matching how `zhinx` keeps half
/// operands in the integer register file.
///
/// # Examples
///
/// ```
/// use terasim_softfloat::F16;
///
/// let x = F16::from_f32(0.1);
/// // 0.1 is not representable; the nearest half value is used.
/// assert_eq!(x.to_bits(), 0x2e66);
/// assert!((x.to_f32() - 0.1).abs() < 1e-4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: Self = Self(0);
    /// One.
    pub const ONE: Self = Self(0x3c00);
    /// Positive infinity.
    pub const INFINITY: Self = Self(0x7c00);
    /// Canonical quiet NaN.
    pub const NAN: Self = Self(0x7e00);
    /// Largest finite value (65504).
    pub const MAX: Self = Self(0x7bff);
    /// The interchange format (1 sign, 5 exponent, 10 mantissa bits) — the
    /// handle into the generic reference converters in `crate::convert`,
    /// which the fast-path test sweeps compare against.
    pub const FORMAT: FloatFormat = FMT;

    /// Creates a value from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with RNE rounding.
    pub fn from_f32(x: f32) -> Self {
        Self(tables::f16_from_f32(x))
    }

    /// Converts from `f64` with a single RNE rounding.
    ///
    /// `f64 -> f32 -> f16` can double-round; this goes through the exact
    /// integer significand instead.
    pub fn from_f64(x: f64) -> Self {
        Self(tables::f16_from_f64(x))
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        tables::f16_to_f32(self.0)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.0 & 0x7c00 == 0x7c00 && self.0 & 0x03ff != 0
    }

    /// Returns `true` for finite values (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        self.0 & 0x7c00 != 0x7c00
    }

    /// Correctly rounded square root (table-driven; one indexed load).
    pub fn sqrt(self) -> Self {
        Self(tables::f16_sqrt(self.0))
    }

    /// Correctly rounded reciprocal `1/self` (table-driven), bit-identical
    /// to `F16::ONE / self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use terasim_softfloat::F16;
    ///
    /// let x = F16::from_f32(3.0);
    /// assert_eq!(x.recip(), F16::ONE / x);
    /// ```
    pub fn recip(self) -> Self {
        Self(tables::f16_recip(self.0))
    }

    /// Absolute value (clears the sign bit).
    pub fn abs(self) -> Self {
        Self(self.0 & 0x7fff)
    }

    /// Fused multiply-add `self * a + b` with a single terminal rounding.
    ///
    /// This is the semantics of `fmadd.h` in the DUT model: the product and
    /// sum are formed in `f64` (exact for binary16 operands) and rounded
    /// once to binary16.
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }
}

impl Add for F16 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        if self == Self::ONE {
            // The kernels' Cholesky inverts the diagonal as `1.0 / d`;
            // serve that straight from the reciprocal table.
            return rhs.recip();
        }
        Self::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = Self;
    fn neg(self) -> Self {
        Self(self.0 ^ 0x8000)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let two = F16::from_f32(2.0);
        let three = F16::from_f32(3.0);
        assert_eq!((two + three).to_f32(), 5.0);
        assert_eq!((two * three).to_f32(), 6.0);
        assert_eq!((three - two).to_f32(), 1.0);
        assert_eq!((three / two).to_f32(), 1.5);
        assert_eq!((-two).to_f32(), -2.0);
        assert_eq!(two.sqrt().to_f32(), f32::from(F16::from_f32(std::f32::consts::SQRT_2)));
    }

    #[test]
    fn overflow_saturates_to_inf() {
        let big = F16::MAX;
        assert_eq!(big + big, F16::INFINITY);
        assert!((big * big).to_f32().is_infinite());
    }

    #[test]
    fn nan_propagates() {
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
    }

    #[test]
    fn fma_single_rounding() {
        // eps = 2^-6: eps*eps + 1 = 1 + 2^-12. Two-step (mul then add) loses
        // the tie against 1+2^-11... actually 1+2^-12 is the exact FMA result
        // and lies below the 1+2^-11 midpoint? No: ulp(1)=2^-10, midpoint is
        // 1+2^-11, and 1+2^-12 < midpoint, so both paths give 1.0. Use a case
        // where they differ: a=1+2^-10 (0x3c01), b=2^-11 as addend.
        // a*a = 1 + 2^-9 + 2^-20 exactly; +2^-11 = 1 + 2^-9 + 2^-11 + 2^-20.
        // RNE once: 1 + 2^-9 + 2^-10 (0x3c03, rounds up past the midpoint).
        // Two-step: a*a rounds to 1+2^-9 (0x3c02), +2^-11 ties to even 0x3c02.
        let a = F16::from_bits(0x3c01);
        let b = F16::from_f32(2f32.powi(-11));
        let fused = a.mul_add(a, b);
        let two_step = a * a + b;
        assert_eq!(fused, F16::from_bits(0x3c03));
        assert_eq!(two_step, F16::from_bits(0x3c02));
        // 1.5*1.5 + 0.25 = 2.5 exactly.
        let x = F16::from_f32(1.5);
        assert_eq!(x.mul_add(x, F16::from_f32(0.25)).to_f32(), 2.5);
    }

    #[test]
    fn from_f64_single_rounding() {
        // Pick x between an f16 midpoint and the f32 value that RNE-to-f32
        // would snap onto the midpoint: 1 + 2^-11 is the midpoint between
        // 1.0 and 1+2^-10. x slightly above must round up to 0x3c01.
        let mid = 1.0f64 + 2f64.powi(-11);
        let just_above = mid + 2f64.powi(-30);
        assert_eq!(F16::from_f64(mid), F16::from_bits(0x3c00), "tie to even");
        assert_eq!(F16::from_f64(just_above), F16::from_bits(0x3c01));
        let just_below = mid - 2f64.powi(-30);
        assert_eq!(F16::from_f64(just_below), F16::from_bits(0x3c00));
    }

    #[test]
    fn ordering() {
        assert!(F16::from_f32(1.0) < F16::from_f32(2.0));
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }
}
