//! The 8-bit SmallFloat "quarter precision" minifloat (binary8, E5M2).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};

use crate::convert::{mini_from_f32_bits, mini_from_f64_bits, FloatFormat};
use crate::F16;

/// The SmallFloat binary8 interchange format (E5M2).
pub(crate) const FMT: FloatFormat = FloatFormat::new(5, 2);

/// An 8-bit minifloat with 1 sign, 5 exponent and 2 mantissa bits — the
/// SmallFloat `binary8` of Tagliavini et al. (paper reference \[22\]).
///
/// This is the "8bQuarter" element type of the paper's low-precision MMSE
/// kernels (the paper prints "4b exponent, 2b mantissa", which neither
/// fills a byte nor matches its own SmallFloat citation; we follow the
/// cited 1-5-2 layout — see `DESIGN.md`). IEEE-style: bias 15,
/// subnormals, infinities, NaN; the coarse 2-bit mantissa is precisely
/// what costs the 8-bit kernels their BER at high SNR (Figure 9). Every
/// [`F8`] value is exactly representable as an [`F16`], so widening is
/// lossless while narrowing rounds (RNE).
///
/// # Examples
///
/// ```
/// use terasim_softfloat::{F8, F16};
///
/// let x = F8::from_f32(1.25);
/// assert_eq!(x.to_f32(), 1.25);
/// assert_eq!(F16::from(x).to_f32(), 1.25);
/// assert_eq!(F8::from_f32(1e6), F8::INFINITY);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(transparent)]
pub struct F8(u8);

impl F8 {
    /// Positive zero.
    pub const ZERO: Self = Self(0);
    /// One.
    pub const ONE: Self = Self(0x3c);
    /// Positive infinity.
    pub const INFINITY: Self = Self(0x7c);
    /// Canonical quiet NaN.
    pub const NAN: Self = Self(0x7e);
    /// Largest finite value (57344).
    pub const MAX: Self = Self(0x7b);
    /// The interchange format (1 sign, 5 exponent, 2 mantissa bits) — the
    /// handle into the generic reference converters in `crate::convert`.
    pub const FORMAT: FloatFormat = FMT;

    /// Creates a value from its raw bit pattern.
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Converts from `f32` with RNE rounding.
    pub fn from_f32(x: f32) -> Self {
        Self(mini_from_f32_bits(x, FMT) as u8)
    }

    /// Converts from `f64` with a single RNE rounding.
    pub fn from_f64(x: f64) -> Self {
        Self(mini_from_f64_bits(x, FMT) as u8)
    }

    /// Converts to `f32` exactly (table-driven; one indexed load).
    pub fn to_f32(self) -> f32 {
        crate::tables::f8_to_f32(self.0)
    }

    /// Converts to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Rounds an [`F16`] to quarter precision (RNE). Exact since binary16
    /// values convert to `f32` losslessly.
    pub fn from_f16(x: F16) -> Self {
        Self::from_f32(x.to_f32())
    }

    /// Returns `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.0 & 0x7c == 0x7c && self.0 & 0x03 != 0
    }

    /// Returns `true` for finite values (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        self.0 & 0x7c != 0x7c
    }

    /// Absolute value (clears the sign bit).
    pub fn abs(self) -> Self {
        Self(self.0 & 0x7f)
    }
}

impl Add for F8 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F8 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F8 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F8 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F8 {
    type Output = Self;
    fn neg(self) -> Self {
        Self(self.0 ^ 0x80)
    }
}

impl PartialOrd for F8 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<F8> for F16 {
    /// Lossless widening: binary8's range and precision are strict subsets
    /// of binary16's.
    fn from(x: F8) -> F16 {
        F16::from_f32(x.to_f32())
    }
}

impl From<F8> for f32 {
    fn from(x: F8) -> f32 {
        x.to_f32()
    }
}

impl fmt::Debug for F8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F8({} = {:#04x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(F8::ONE.to_f32(), 1.0);
        assert_eq!(F8::MAX.to_f32(), 57344.0);
        assert!(F8::NAN.is_nan());
        assert!(!F8::INFINITY.is_finite());
        assert_eq!(F8::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn widening_is_lossless_for_all_values() {
        for bits in 0..=u8::MAX {
            let x = F8::from_bits(bits);
            if x.is_nan() {
                assert!(F16::from(x).is_nan());
                continue;
            }
            assert_eq!(F16::from(x).to_f32(), x.to_f32(), "widening {bits:#04x}");
            assert_eq!(F8::from_f16(F16::from(x)), x, "narrow(widen) identity {bits:#04x}");
        }
    }

    #[test]
    fn coarse_arithmetic() {
        // 1 + 1/8 rounds back to 1 (ulp(1) = 1/4, RNE tie-to-even at 1+1/8).
        let one = F8::ONE;
        let eighth = F8::from_f32(0.125);
        assert_eq!(one + eighth, one);
        // But 1 + 3/16 rounds up to 1.25.
        assert_eq!((one + F8::from_f32(0.1875)).to_f32(), 1.25);
        assert_eq!((F8::from_f32(10.0) * F8::from_f32(20.0)).to_f32(), 192.0, "200 rounds to 192");
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(F8::MAX + F8::MAX, F8::INFINITY);
        assert_eq!(-F8::MAX - F8::MAX, -F8::INFINITY);
    }
}
