//! SDR dot-product primitives shared by the ISS FPU and the native DUT model.
//!
//! These functions define the *reference semantics* of the SmallFloat /
//! MiniFloat SIMD instructions used by the five MMSE kernel precisions
//! (paper §IV). Each function documents its exact evaluation and rounding
//! order; the ISS executes these same functions, so ISS-executed kernels and
//! the native detector models are bit-identical by construction.
//!
//! Naming follows the PULP SmallFloat convention: `vfdotpex` is the
//! *expanding* (widening-accumulator) dot product, the `n` variant negates
//! the second product of each pair (used for the real part of complex
//! multiply-accumulates), and `vfcdotpex` is the complex dot product with
//! 32-bit internal precision.

//! # Fast paths
//!
//! The complex-MAC primitives are *fused*: every operand lane is widened
//! once (table lookup), the whole four-rounding sequence runs on the
//! widened values, and each terminal rounding uses the specialized
//! narrowing converters — one call into the softfloat layer instead of
//! four independent mul/add round trips. Word-level early-outs skip the
//! arithmetic entirely when a multiplicand is (signed) zero and the
//! result is provably the unchanged accumulator. The original generic
//! implementations are retained verbatim in [`reference`](mod@reference) and pinned
//! bit-identical by `tests/fastpath.rs`.

use crate::{F16, F8};

/// `true` if both packed lanes are (signed) zero — the word-level test
/// `(bits(x0) | bits(x1)) & 0x7fff == 0`.
#[inline]
fn h2_zero(x: [F16; 2]) -> bool {
    (x[0].to_bits() | x[1].to_bits()) & 0x7fff == 0
}

/// `true` if both lanes are finite (no Inf/NaN that could poison a
/// zero product).
#[inline]
fn h2_finite(x: [F16; 2]) -> bool {
    x[0].is_finite() && x[1].is_finite()
}

/// `true` if both lanes have nonzero magnitude and are not NaN: adding a
/// signed zero provably leaves such values unchanged through the
/// widen/narrow round trip (a NaN lane would be payload-canonicalized by
/// the full path, and a zero lane's sign can flip).
#[inline]
fn h2_ordinary(x: [F16; 2]) -> bool {
    x[0].to_bits() & 0x7fff != 0 && x[1].to_bits() & 0x7fff != 0 && !x[0].is_nan() && !x[1].is_nan()
}

/// Early-out for every complex-MAC shape: when one multiplicand word is
/// all signed zeros, the other is finite, and both accumulator lanes are
/// ordinary (nonzero, non-NaN), all four products are signed zeros and
/// every terminal RNE rounding reproduces the accumulator exactly.
#[inline]
fn cmac_skips(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> bool {
    ((h2_zero(a) && h2_finite(b)) || (h2_zero(b) && h2_finite(a))) && h2_ordinary(acc)
}

#[inline]
fn b2_zero(x: [F8; 2]) -> bool {
    (x[0].to_bits() | x[1].to_bits()) & 0x7f == 0
}

#[inline]
fn b2_finite(x: [F8; 2]) -> bool {
    x[0].is_finite() && x[1].is_finite()
}

#[inline]
fn b2_ordinary(x: [F8; 2]) -> bool {
    x[0].to_bits() & 0x7f != 0 && x[1].to_bits() & 0x7f != 0 && !x[0].is_nan() && !x[1].is_nan()
}

/// Binary8 variant of [`cmac_skips`].
#[inline]
fn cmac_skips_b(acc: [F8; 2], a: [F8; 2], b: [F8; 2]) -> bool {
    ((b2_zero(a) && b2_finite(b)) || (b2_zero(b) && b2_finite(a))) && b2_ordinary(acc)
}

/// Widening 2-lane dot product, 16-bit lanes, 32-bit accumulator
/// (`vfdotpex.s.h`).
///
/// Computes `acc + (a0*b0 + a1*b1)`. Each product is exact in `f32`
/// (binary16 significands are 11 bits); the two products are summed with one
/// RNE rounding, then added to `acc` with a second RNE rounding.
///
/// # Examples
///
/// ```
/// use terasim_softfloat::{ops, F16};
///
/// let acc = ops::vfdotpex_s_h(
///     1.0,
///     [F16::from_f32(2.0), F16::from_f32(3.0)],
///     [F16::from_f32(4.0), F16::from_f32(5.0)],
/// );
/// assert_eq!(acc, 24.0); // 1 + 8 + 15
/// ```
pub fn vfdotpex_s_h(acc: f32, a: [F16; 2], b: [F16; 2]) -> f32 {
    let p0 = a[0].to_f32() * b[0].to_f32();
    let p1 = a[1].to_f32() * b[1].to_f32();
    acc + (p0 + p1)
}

/// Widening 2-lane dot product with negated second lane
/// (`vfndotpex.s.h`): `acc + (a0*b0 - a1*b1)`.
///
/// Used for the real part of a complex MAC: with `a = [ar, ai]` and
/// `b = [br, bi]` this accumulates `Re(a·b) = ar*br - ai*bi`.
pub fn vfndotpex_s_h(acc: f32, a: [F16; 2], b: [F16; 2]) -> f32 {
    let p0 = a[0].to_f32() * b[0].to_f32();
    let p1 = a[1].to_f32() * b[1].to_f32();
    acc + (p0 - p1)
}

/// Widening 4-lane dot product, 8-bit lanes, two 16-bit accumulators
/// (`vfdotpex.h.b`).
///
/// Lane pairs accumulate independently:
/// `acc[0] + (a0*b0 + a1*b1)` and `acc[1] + (a2*b2 + a3*b3)`.
/// Products are exact in `f32` (binary8 significands are 3 bits), each pair is
/// summed in `f32` with one RNE rounding, and each accumulator update rounds
/// once to binary16.
pub fn vfdotpex_h_b(acc: [F16; 2], a: [F8; 4], b: [F8; 4]) -> [F16; 2] {
    let pair = |i: usize| a[i].to_f32() * b[i].to_f32() + a[i + 1].to_f32() * b[i + 1].to_f32();
    [F16::from_f32(acc[0].to_f32() + pair(0)), F16::from_f32(acc[1].to_f32() + pair(2))]
}

/// Widening 4-lane dot product with negated second lane of each pair
/// (`vfndotpex.h.b`): `acc[0] + (a0*b0 - a1*b1)`, `acc[1] + (a2*b2 - a3*b3)`.
///
/// With two packed 8-bit complex numbers `[a0r, a0i, a1r, a1i]` this
/// accumulates the real parts of both complex products at once.
pub fn vfndotpex_h_b(acc: [F16; 2], a: [F8; 4], b: [F8; 4]) -> [F16; 2] {
    let pair = |i: usize| a[i].to_f32() * b[i].to_f32() - a[i + 1].to_f32() * b[i + 1].to_f32();
    [F16::from_f32(acc[0].to_f32() + pair(0)), F16::from_f32(acc[1].to_f32() + pair(2))]
}

/// Complex 16-bit MAC with 32-bit internal precision (`vfcdotpex.s.h`,
/// the "16bCDotp" primitive).
///
/// Computes `acc + a*b` for complex operands `a = ar + j·ai`,
/// `b = br + j·bi`. The four products and the inner additions are evaluated
/// in `f32` (products exact, one RNE each for the inner add), and each
/// accumulator half rounds once back to binary16:
///
/// ```text
/// re' = rne16(f32(acc_re) + (ar*br - ai*bi))
/// im' = rne16(f32(acc_im) + (ar*bi + ai*br))
/// ```
pub fn vfcdotpex_s_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
    if cmac_skips(acc, a, b) {
        return acc;
    }
    let (ar, ai) = (a[0].to_f32(), a[1].to_f32());
    let (br, bi) = (b[0].to_f32(), b[1].to_f32());
    [
        F16::from_f32(acc[0].to_f32() + (ar * br - ai * bi)),
        F16::from_f32(acc[1].to_f32() + (ar * bi + ai * br)),
    ]
}

/// Conjugated complex 16-bit MAC with 32-bit internal precision
/// (`vfcdotpex.c.s.h`): computes `acc + conj(a)*b`.
///
/// The Gram matrix `H^H H` and matched filter `H^H y` of the MMSE detector
/// multiply by the *conjugate transpose*, so the kernels use this variant:
///
/// ```text
/// re' = rne16(f32(acc_re) + (ar*br + ai*bi))
/// im' = rne16(f32(acc_im) + (ar*bi - ai*br))
/// ```
pub fn vfcdotpex_conj_s_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
    if cmac_skips(acc, a, b) {
        return acc;
    }
    let (ar, ai) = (a[0].to_f32(), a[1].to_f32());
    let (br, bi) = (b[0].to_f32(), b[1].to_f32());
    [
        F16::from_f32(acc[0].to_f32() + (ar * br + ai * bi)),
        F16::from_f32(acc[1].to_f32() + (ar * bi - ai * br)),
    ]
}

/// Scalar conjugated complex MAC in pure binary16 (`acc + conj(a)*b`) with
/// `fmadd.h`-family rounding, used by the "16bHalf" Gram/MVM loops.
///
/// ```text
/// re1 = fmadd(ar, br, acc_re)
/// re' = fmadd(ai, bi, re1)
/// im1 = fmadd(ar, bi, acc_im)
/// im' = fnmsub(ai, br, im1)
/// ```
pub fn cmac_conj_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
    if cmac_skips(acc, a, b) {
        return acc;
    }
    // Fused: widen the six operand lanes once, keep the exact rounding
    // chain (each `from_f64` is one terminal RNE, as in `fmadd.h`).
    let (ar, ai) = (a[0].to_f64(), a[1].to_f64());
    let (br, bi) = (b[0].to_f64(), b[1].to_f64());
    let re1 = F16::from_f64(ar * br + acc[0].to_f64());
    let re = F16::from_f64(ai * bi + re1.to_f64());
    let im1 = F16::from_f64(ar * bi + acc[1].to_f64());
    let im = F16::from_f64(-(ai * br) + im1.to_f64());
    [re, im]
}

/// Scalar conjugated complex MAC in quarter precision (`acc + conj(a)*b`),
/// the "8bQuarter" Gram/MVM primitive (`pv.cmac.c.b`).
pub fn cmac_conj_b(acc: [F8; 2], a: [F8; 2], b: [F8; 2]) -> [F8; 2] {
    if cmac_skips_b(acc, a, b) {
        return acc;
    }
    let (ar, ai) = (a[0].to_f64(), a[1].to_f64());
    let (br, bi) = (b[0].to_f64(), b[1].to_f64());
    let re1 = F8::from_f64(ar * br + acc[0].to_f64());
    let re = F8::from_f64(ai * bi + re1.to_f64());
    let im1 = F8::from_f64(ar * bi + acc[1].to_f64());
    let im = F8::from_f64(-(ai * br) + im1.to_f64());
    [re, im]
}

/// Scalar complex MAC in pure binary16, the "16bHalf" primitive.
///
/// Four `fmadd.h`-family operations, each with a single terminal rounding
/// (see [`F16::mul_add`]):
///
/// ```text
/// re1 = fmadd(ar, br, acc_re)   // rne16(ar*br + acc_re)
/// re' = fnmsub(ai, bi, re1)     // rne16(-(ai*bi) + re1)
/// im1 = fmadd(ar, bi, acc_im)
/// im' = fmadd(ai, br, im1)
/// ```
pub fn cmac_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
    if cmac_skips(acc, a, b) {
        return acc;
    }
    // Fused: widen the six operand lanes once, keep the exact rounding
    // chain (each `from_f64` is one terminal RNE, as in `fmadd.h`).
    let (ar, ai) = (a[0].to_f64(), a[1].to_f64());
    let (br, bi) = (b[0].to_f64(), b[1].to_f64());
    let re1 = F16::from_f64(ar * br + acc[0].to_f64());
    let re = F16::from_f64(-(ai * bi) + re1.to_f64());
    let im1 = F16::from_f64(ar * bi + acc[1].to_f64());
    let im = F16::from_f64(ai * br + im1.to_f64());
    [re, im]
}

/// Scalar complex MAC in pure quarter precision (binary8), used by the
/// "8bQuarter" kernel for the Gram matrix and matched filter.
///
/// Same structure as [`cmac_h`] with all roundings in binary8.
pub fn cmac_b(acc: [F8; 2], a: [F8; 2], b: [F8; 2]) -> [F8; 2] {
    if cmac_skips_b(acc, a, b) {
        return acc;
    }
    let (ar, ai) = (a[0].to_f64(), a[1].to_f64());
    let (br, bi) = (b[0].to_f64(), b[1].to_f64());
    let re1 = F8::from_f64(ar * br + acc[0].to_f64());
    let re = F8::from_f64(-(ai * bi) + re1.to_f64());
    let im1 = F8::from_f64(ar * bi + acc[1].to_f64());
    let im = F8::from_f64(ai * br + im1.to_f64());
    [re, im]
}

/// 2-lane binary16 shuffle helper (`pv.shuffle2.h` with a swap pattern):
/// returns `[x1, x0]`.
pub fn swap_h(x: [F16; 2]) -> [F16; 2] {
    [x[1], x[0]]
}

/// 4-lane byte shuffle helper: swaps the bytes of each 16-bit half,
/// `[x1, x0, x3, x2]`, turning packed `[re, im]` pairs into `[im, re]`.
pub fn swap_b(x: [F8; 4]) -> [F8; 4] {
    [x[1], x[0], x[3], x[2]]
}

/// Retained reference implementations of the accelerated primitives,
/// built *only* on the generic converters in `crate::convert` — no
/// lookup tables, no specialized narrowing, no early-outs. These are the
/// seed semantics; `tests/fastpath.rs` pins every fast path bit-identical
/// to them (exhaustive for the unary ops, large seeded sweeps for the
/// binary/fused ops).
pub mod reference {
    use crate::convert::{mini_from_f32_bits, mini_from_f64_bits, mini_to_f32_bits};
    use crate::{F16, F8};

    /// Reference binary16 → `f32` widening (exact).
    pub fn h_to_f32(x: F16) -> f32 {
        mini_to_f32_bits(u32::from(x.to_bits()), F16::FORMAT)
    }

    /// Reference binary16 → `f64` widening (exact).
    pub fn h_to_f64(x: F16) -> f64 {
        f64::from(h_to_f32(x))
    }

    /// Reference `f32` → binary16 narrowing (RNE).
    pub fn h_from_f32(x: f32) -> F16 {
        F16::from_bits(mini_from_f32_bits(x, F16::FORMAT) as u16)
    }

    /// Reference `f64` → binary16 narrowing (single RNE).
    pub fn h_from_f64(x: f64) -> F16 {
        F16::from_bits(mini_from_f64_bits(x, F16::FORMAT) as u16)
    }

    /// Reference binary8 → `f32` widening (exact).
    pub fn b_to_f32(x: F8) -> f32 {
        mini_to_f32_bits(u32::from(x.to_bits()), F8::FORMAT)
    }

    /// Reference binary8 → `f64` widening (exact).
    pub fn b_to_f64(x: F8) -> f64 {
        f64::from(b_to_f32(x))
    }

    /// Reference `f64` → binary8 narrowing (single RNE).
    pub fn b_from_f64(x: f64) -> F8 {
        F8::from_bits(mini_from_f64_bits(x, F8::FORMAT) as u8)
    }

    /// Reference binary16 square root.
    pub fn sqrt_h(x: F16) -> F16 {
        h_from_f32(h_to_f32(x).sqrt())
    }

    /// Reference binary16 reciprocal (`1/x` through correctly rounded
    /// `f32` division).
    pub fn recip_h(x: F16) -> F16 {
        h_from_f32(1.0 / h_to_f32(x))
    }

    /// Reference `fmadd.h`: `a*b + c` with one terminal rounding.
    pub fn mul_add_h(a: F16, b: F16, c: F16) -> F16 {
        h_from_f64(h_to_f64(a) * h_to_f64(b) + h_to_f64(c))
    }

    /// Reference [`vfcdotpex_s_h`](super::vfcdotpex_s_h) (seed body).
    pub fn vfcdotpex_s_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
        let (ar, ai) = (h_to_f32(a[0]), h_to_f32(a[1]));
        let (br, bi) = (h_to_f32(b[0]), h_to_f32(b[1]));
        [
            h_from_f32(h_to_f32(acc[0]) + (ar * br - ai * bi)),
            h_from_f32(h_to_f32(acc[1]) + (ar * bi + ai * br)),
        ]
    }

    /// Reference [`vfcdotpex_conj_s_h`](super::vfcdotpex_conj_s_h) (seed
    /// body).
    pub fn vfcdotpex_conj_s_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
        let (ar, ai) = (h_to_f32(a[0]), h_to_f32(a[1]));
        let (br, bi) = (h_to_f32(b[0]), h_to_f32(b[1]));
        [
            h_from_f32(h_to_f32(acc[0]) + (ar * br + ai * bi)),
            h_from_f32(h_to_f32(acc[1]) + (ar * bi - ai * br)),
        ]
    }

    /// Reference [`cmac_h`](super::cmac_h) (seed body: four dependent
    /// `fmadd.h`-family round trips).
    pub fn cmac_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
        let re1 = mul_add_h(a[0], b[0], acc[0]);
        let re = h_from_f64(-(h_to_f64(a[1]) * h_to_f64(b[1])) + h_to_f64(re1));
        let im1 = mul_add_h(a[0], b[1], acc[1]);
        let im = mul_add_h(a[1], b[0], im1);
        [re, im]
    }

    /// Reference [`cmac_conj_h`](super::cmac_conj_h) (seed body).
    pub fn cmac_conj_h(acc: [F16; 2], a: [F16; 2], b: [F16; 2]) -> [F16; 2] {
        let re1 = mul_add_h(a[0], b[0], acc[0]);
        let re = mul_add_h(a[1], b[1], re1);
        let im1 = mul_add_h(a[0], b[1], acc[1]);
        let im = h_from_f64(-(h_to_f64(a[1]) * h_to_f64(b[0])) + h_to_f64(im1));
        [re, im]
    }

    /// Reference [`cmac_b`](super::cmac_b) (seed body).
    pub fn cmac_b(acc: [F8; 2], a: [F8; 2], b: [F8; 2]) -> [F8; 2] {
        let re1 = b_from_f64(b_to_f64(a[0]) * b_to_f64(b[0]) + b_to_f64(acc[0]));
        let re = b_from_f64(-(b_to_f64(a[1]) * b_to_f64(b[1])) + b_to_f64(re1));
        let im1 = b_from_f64(b_to_f64(a[0]) * b_to_f64(b[1]) + b_to_f64(acc[1]));
        let im = b_from_f64(b_to_f64(a[1]) * b_to_f64(b[0]) + b_to_f64(im1));
        [re, im]
    }

    /// Reference [`cmac_conj_b`](super::cmac_conj_b) (seed body).
    pub fn cmac_conj_b(acc: [F8; 2], a: [F8; 2], b: [F8; 2]) -> [F8; 2] {
        let re1 = b_from_f64(b_to_f64(a[0]) * b_to_f64(b[0]) + b_to_f64(acc[0]));
        let re = b_from_f64(b_to_f64(a[1]) * b_to_f64(b[1]) + b_to_f64(re1));
        let im1 = b_from_f64(b_to_f64(a[0]) * b_to_f64(b[1]) + b_to_f64(acc[1]));
        let im = b_from_f64(-(b_to_f64(a[1]) * b_to_f64(b[0])) + b_to_f64(im1));
        [re, im]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: f32) -> F16 {
        F16::from_f32(x)
    }

    fn q(x: f32) -> F8 {
        F8::from_f32(x)
    }

    #[test]
    fn complex_mac_paths_agree_on_exact_values() {
        // (1+2j)*(3+4j) = 3-8 + j(4+6) = -5 + 10j; all intermediates exact.
        let a = [h(1.0), h(2.0)];
        let b = [h(3.0), h(4.0)];
        let acc = [h(0.5), h(-0.5)];

        let half = cmac_h(acc, a, b);
        assert_eq!([half[0].to_f32(), half[1].to_f32()], [-4.5, 9.5]);

        let cd = vfcdotpex_s_h(acc, a, b);
        assert_eq!([cd[0].to_f32(), cd[1].to_f32()], [-4.5, 9.5]);

        // wDotp path: re via ndotp(a, b), im via dotp(a, swap(b)).
        let re = vfndotpex_s_h(acc[0].to_f32(), a, b);
        let im = vfdotpex_s_h(acc[1].to_f32(), a, swap_h(b));
        assert_eq!([re, im], [-4.5, 9.5]);
    }

    #[test]
    fn wdotp_wider_accumulator_beats_half() {
        // Accumulate 1024 + 0.5 repeatedly: f32 accumulator keeps the 0.5s,
        // binary16 (ulp(1024) = 1) ties them away to even.
        let big = h(1024.0);
        let tiny = [h(0.5), h(1.0)];
        let one = [h(1.0), h(0.0)];
        let f32_acc = vfdotpex_s_h(big.to_f32(), tiny, one);
        assert_eq!(f32_acc, 1024.5);
        let h_acc = big.mul_add(h(1.0), h(0.5));
        assert_eq!(h_acc.to_f32(), 1024.0, "binary16 loses the 0.5 (tie to even)");
    }

    #[test]
    fn quad_dotp_accumulates_pairwise() {
        let a = [q(1.0), q(2.0), q(3.0), q(4.0)];
        let b = [q(5.0), q(6.0), q(7.0), q(8.0)];
        let acc = vfdotpex_h_b([F16::ZERO; 2], a, b);
        assert_eq!(acc[0].to_f32(), 17.0); // 5 + 12
        assert_eq!(acc[1].to_f32(), 53.0); // 21 + 32
        let nacc = vfndotpex_h_b([F16::ZERO; 2], a, b);
        assert_eq!(nacc[0].to_f32(), -7.0); // 5 - 12
        assert_eq!(nacc[1].to_f32(), -11.0); // 21 - 32
    }

    #[test]
    fn packed_complex_8b_mac() {
        // Two 8b complex numbers per word: a = [1+2j, 3+4j], b = [5+6j, 7+8j].
        let a = [q(1.0), q(2.0), q(3.0), q(4.0)];
        let b = [q(5.0), q(6.0), q(7.0), q(8.0)];
        // Real parts: 1*5-2*6 = -7 and 3*7-4*8 = -11.
        let re = vfndotpex_h_b([F16::ZERO; 2], a, b);
        // Imag parts: 1*6+2*5 = 16 and 3*8+4*7 = 52, via byte swap of b.
        let im = vfdotpex_h_b([F16::ZERO; 2], a, swap_b(b));
        assert_eq!([re[0].to_f32(), re[1].to_f32()], [-7.0, -11.0]);
        assert_eq!([im[0].to_f32(), im[1].to_f32()], [16.0, 52.0]);
    }

    #[test]
    fn shuffles() {
        assert_eq!(swap_h([h(1.0), h(2.0)]), [h(2.0), h(1.0)]);
        assert_eq!(swap_b([q(1.0), q(2.0), q(3.0), q(4.0)]), [q(2.0), q(1.0), q(4.0), q(3.0)]);
    }
}
