//! Generic IEEE-754-style minifloat packing/unpacking with RNE rounding.
//!
//! Both [`F16`](crate::F16) and [`F8`](crate::F8) are thin wrappers over
//! these routines; keeping a single conversion kernel means a single place
//! to test subnormals, overflow and tie-breaking.

/// Static description of a binary interchange format: 1 sign bit,
/// `exp_bits` exponent bits, `man_bits` mantissa bits.
///
/// The format follows IEEE 754 conventions: biased exponent with
/// `bias = 2^(exp_bits-1) - 1`, gradual underflow (subnormals), signed
/// zeros, infinities and NaNs (all-ones exponent).
///
/// # Examples
///
/// ```
/// use terasim_softfloat::FloatFormat;
///
/// const HALF: FloatFormat = FloatFormat::new(5, 10);
/// assert_eq!(HALF.total_bits(), 16);
/// assert_eq!(HALF.bias(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    exp_bits: u32,
    man_bits: u32,
}

impl FloatFormat {
    /// Creates a format with the given exponent and mantissa widths.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits < 2`, `man_bits < 1`, or the total width
    /// (including the sign bit) exceeds 16 bits — wider formats should use
    /// native `f32`/`f64`.
    pub const fn new(exp_bits: u32, man_bits: u32) -> Self {
        assert!(exp_bits >= 2 && man_bits >= 1 && 1 + exp_bits + man_bits <= 16);
        Self { exp_bits, man_bits }
    }

    /// Number of exponent bits.
    pub const fn exp_bits(self) -> u32 {
        self.exp_bits
    }

    /// Number of explicit mantissa bits.
    pub const fn man_bits(self) -> u32 {
        self.man_bits
    }

    /// Total storage width including the sign bit.
    pub const fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent bias (`2^(exp_bits-1) - 1`).
    pub const fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Largest unbiased exponent of a normal number.
    pub const fn emax(self) -> i32 {
        self.bias()
    }

    /// Smallest unbiased exponent of a normal number.
    pub const fn emin(self) -> i32 {
        1 - self.bias()
    }

    const fn exp_mask(self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    /// Bit pattern of positive infinity.
    pub const fn inf_bits(self) -> u32 {
        self.exp_mask() << self.man_bits
    }

    /// Bit pattern of the canonical quiet NaN.
    pub const fn nan_bits(self) -> u32 {
        self.inf_bits() | (1 << (self.man_bits - 1))
    }

    /// Bit pattern of the largest finite value.
    pub const fn max_finite_bits(self) -> u32 {
        self.inf_bits() - 1
    }
}

/// Converts `x` to the packed representation of `fmt`, rounding to nearest
/// with ties to even. Overflow produces infinity; NaN payloads collapse to
/// the canonical quiet NaN (sign preserved).
pub fn mini_from_f32_bits(x: f32, fmt: FloatFormat) -> u32 {
    let bits = x.to_bits();
    let sign = bits >> 31;
    let aexp = ((bits >> 23) & 0xff) as i32;
    let aman = bits & 0x7f_ffff;

    if aexp == 0xff {
        let s = sign << (fmt.exp_bits + fmt.man_bits);
        return if aman != 0 { s | fmt.nan_bits() } else { s | fmt.inf_bits() };
    }
    // Express |x| exactly as sig * 2^pow2 with sig a non-negative integer.
    let (sig, pow2): (u64, i32) =
        if aexp == 0 { (u64::from(aman), -149) } else { (u64::from(aman | 0x80_0000), aexp - 150) };
    round_exact(sign, sig, pow2, fmt)
}

/// Converts `x` to the packed representation of `fmt` with a *single* RNE
/// rounding (no intermediate `f32` step, so no double rounding).
pub fn mini_from_f64_bits(x: f64, fmt: FloatFormat) -> u32 {
    let bits = x.to_bits();
    let sign = (bits >> 63) as u32;
    let aexp = ((bits >> 52) & 0x7ff) as i32;
    let aman = bits & 0xf_ffff_ffff_ffff;

    if aexp == 0x7ff {
        let s = sign << (fmt.exp_bits + fmt.man_bits);
        return if aman != 0 { s | fmt.nan_bits() } else { s | fmt.inf_bits() };
    }
    let (sig, pow2): (u64, i32) = if aexp == 0 { (aman, -1074) } else { (aman | (1 << 52), aexp - 1075) };
    round_exact(sign, sig, pow2, fmt)
}

/// Rounds the exact value `(-1)^sign * sig * 2^pow2` to `fmt` with RNE.
fn round_exact(sign_bit: u32, sig: u64, pow2: i32, fmt: FloatFormat) -> u32 {
    let m = fmt.man_bits;
    let sign = sign_bit << (fmt.exp_bits + m);
    if sig == 0 {
        return sign; // signed zero
    }
    let msb = 63 - i32::try_from(sig.leading_zeros()).expect("sig is nonzero");
    let e_val = msb + pow2; // floor(log2 |x|)

    if e_val > fmt.emax() {
        // |x| >= 2^(emax+1) > max_finite + ulp/2: rounds to infinity.
        return sign | fmt.inf_bits();
    }

    // Quantum of the destination grid around |x|.
    let q = if e_val < fmt.emin() { fmt.emin() - m as i32 } else { e_val - m as i32 };
    let shift = q - pow2;
    let rounded: u64 = if shift <= 0 {
        // Exactly representable on the grid; widen to avoid shift overflow.
        let wide = u128::from(sig) << u32::try_from(-shift).expect("shift fits in u32");
        u64::try_from(wide).expect("on-grid significand fits 64 bits")
    } else if shift > msb + 1 {
        0 // |x| < quantum/2
    } else {
        let shift = u32::try_from(shift).expect("shift is positive");
        let keep = sig >> shift;
        let rem = sig & ((1u64 << shift) - 1);
        let half = 1u64 << (shift - 1);
        keep + u64::from(rem > half || (rem == half && keep & 1 == 1))
    };

    if rounded == 0 {
        return sign; // underflow to zero
    }
    let msb2 = 63 - i32::try_from(rounded.leading_zeros()).expect("rounded is nonzero");
    let e2 = msb2 + q;
    if e2 > fmt.emax() {
        return sign | fmt.inf_bits(); // rounding carried past the top
    }
    if e2 < fmt.emin() {
        // Subnormal: biased exponent 0, mantissa is the scaled significand.
        debug_assert!(q == fmt.emin() - m as i32);
        return sign | u32::try_from(rounded).expect("subnormal mantissa fits");
    }
    // Normal: strip the implicit leading one. A rounding carry can leave a
    // power-of-two significand one bit wider (mantissa zero, exponent +1).
    debug_assert!(
        msb2 == m as i32 || (msb2 == m as i32 + 1 && rounded.is_power_of_two()),
        "normal significand is m+1 bits (or a carried power of two)"
    );
    let man = u32::try_from(rounded - (1 << msb2)).expect("mantissa fits") >> (msb2 - m as i32).max(0);
    let biased = u32::try_from(e2 + fmt.bias()).expect("biased exponent is positive");
    sign | (biased << m) | man
}

/// Converts a packed `fmt` value to `f32` exactly (every minifloat value is
/// representable in `f32`).
pub fn mini_to_f32_bits(packed: u32, fmt: FloatFormat) -> f32 {
    let e = fmt.exp_bits;
    let m = fmt.man_bits;
    let sign = ((packed >> (e + m)) & 1) << 31;
    let exp = (packed >> m) & fmt.exp_mask();
    let man = packed & ((1 << m) - 1);

    if exp == fmt.exp_mask() {
        return f32::from_bits(sign | 0x7f80_0000 | if man != 0 { 0x40_0000 } else { 0 });
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: man * 2^(emin - m); renormalize into f32.
        let leading = 31 - man.leading_zeros(); // position of the top set bit, < m
        let shift = m - leading;
        let norm_man = (man << shift) & ((1 << m) - 1);
        let norm_exp = fmt.emin() - shift as i32;
        let f32_exp = u32::try_from(norm_exp + 127).expect("in f32 normal range");
        return f32::from_bits(sign | (f32_exp << 23) | (norm_man << (23 - m)));
    }
    let unbiased = exp as i32 - fmt.bias();
    let f32_exp = u32::try_from(unbiased + 127).expect("in f32 normal range");
    f32::from_bits(sign | (f32_exp << 23) | (man << (23 - m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF: FloatFormat = FloatFormat::new(5, 10);
    const E4M3: FloatFormat = FloatFormat::new(4, 3);

    #[test]
    fn half_known_values() {
        assert_eq!(mini_from_f32_bits(1.0, HALF), 0x3c00);
        assert_eq!(mini_from_f32_bits(-2.0, HALF), 0xc000);
        assert_eq!(mini_from_f32_bits(65504.0, HALF), 0x7bff);
        assert_eq!(mini_from_f32_bits(65520.0, HALF), 0x7c00, "midpoint ties to even -> inf");
        assert_eq!(mini_from_f32_bits(65519.9, HALF), 0x7bff);
        assert_eq!(mini_from_f32_bits(f32::INFINITY, HALF), 0x7c00);
        assert_eq!(mini_from_f32_bits(f32::NEG_INFINITY, HALF), 0xfc00);
        assert_eq!(mini_from_f32_bits(5.960_464_5e-8, HALF), 0x0001, "smallest subnormal");
        assert_eq!(
            mini_from_f32_bits(2.980_232_2e-8, HALF),
            0x0000,
            "tie at half-subnormal rounds to even zero"
        );
        assert_eq!(mini_from_f32_bits(2.981e-8, HALF), 0x0001);
    }

    #[test]
    fn half_roundtrip_exhaustive() {
        for bits in 0..=u16::MAX {
            let f = mini_to_f32_bits(u32::from(bits), HALF);
            if f.is_nan() {
                let back = mini_from_f32_bits(f, HALF);
                assert_eq!(back & 0x7c00, 0x7c00);
                assert_ne!(back & 0x3ff, 0);
                continue;
            }
            assert_eq!(
                mini_from_f32_bits(f, HALF),
                u32::from(bits),
                "roundtrip failed for {bits:#06x} ({f})"
            );
        }
    }

    #[test]
    fn e4m3_roundtrip_exhaustive() {
        for bits in 0..=u8::MAX {
            let f = mini_to_f32_bits(u32::from(bits), E4M3);
            if f.is_nan() {
                continue;
            }
            assert_eq!(mini_from_f32_bits(f, E4M3), u32::from(bits));
        }
    }

    #[test]
    fn e4m3_range() {
        // E4M3 (IEEE-style, with inf): max finite = 1.875 * 2^7 = 240.
        assert_eq!(mini_to_f32_bits(E4M3.max_finite_bits(), E4M3), 240.0);
        assert_eq!(mini_from_f32_bits(240.0, E4M3), E4M3.max_finite_bits());
        assert_eq!(mini_from_f32_bits(260.0, E4M3), E4M3.inf_bits());
        // Smallest subnormal = 2^(-6-3) = 2^-9.
        assert_eq!(mini_to_f32_bits(1, E4M3), 2f32.powi(-9));
    }

    #[test]
    fn rne_ties() {
        // 1 + 1/2048 is exactly between 1.0 (0x3c00) and nextafter (0x3c01): ties to even.
        let tie = 1.0 + 2f32.powi(-11);
        assert_eq!(mini_from_f32_bits(tie, HALF), 0x3c00);
        let tie_up = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(mini_from_f32_bits(tie_up, HALF), 0x3c02);
    }

    #[test]
    fn signed_zero_and_nan_sign() {
        assert_eq!(mini_from_f32_bits(-0.0, HALF), 0x8000);
        let neg_nan = f32::from_bits(0xffc0_0000);
        assert_eq!(mini_from_f32_bits(neg_nan, HALF), 0x8000 | HALF.nan_bits());
    }

    #[test]
    fn monotonic_on_grid_neighbours() {
        // Conversion of consecutive f32 values never decreases (as u16 order on positives).
        let mut prev = mini_from_f32_bits(0.0, E4M3);
        let mut x = 0.0f32;
        for _ in 0..10_000 {
            x = f32::from_bits(x.to_bits() + 97);
            if !x.is_finite() {
                break;
            }
            let cur = mini_from_f32_bits(x, E4M3);
            assert!(cur >= prev, "non-monotonic at {x}");
            prev = cur;
        }
    }
}
