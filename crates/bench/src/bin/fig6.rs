//! Figure 6: runtime of one Monte-Carlo iteration (an OFDM symbol of
//! NSC subcarrier problems batched on a single Snitch), single-thread,
//! plus multi-thread scaling over independent symbols.
//!
//! Paper: NSC = 1638 (50 MHz NR), runtimes 9.44 s (4x4) to <3 min (32x32)
//! per iteration on one EPYC thread; 73–121× speedup with 128 threads.
//!
//! Each (MIMO, precision) row prepares its scenario artifacts **once**
//! (`SymbolScenario`); the single-thread measurement and the
//! multi-symbol batch both run over that shared set, the batch through a
//! work-stealing `BatchRunner` (one symbol per job, per-symbol seeds).
//!
//! Run: `cargo run -p terasim-bench --release --bin fig6 [--full]`

use terasim::experiments::{BatchConfig, SymbolScenario};
use terasim::serve::BatchRunner;
use terasim_bench::{host_threads, min_sec, Scale};
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let threads = host_threads();
    let nsc = scale.nsc();
    println!("{}", scale.banner("Figure 6 — OFDM-symbol Monte-Carlo iteration runtime"));
    println!(
        "NSC = {nsc} subcarrier problems on one Snitch; {threads} host threads for the parallel sweep\n"
    );

    println!(
        " MIMO  | precision | 1-symbol 1-thread | Snitch cycles | MIPS   | {}-symbols {}-threads | speedup",
        threads, threads
    );
    println!(
        " ------+-----------+-------------------+---------------+--------+----------------------+--------"
    );
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            let config = BatchConfig { n, precision, nsc, seed: 60, unroll: 2 };
            // One artifact set per row: the single-symbol reference and
            // every symbol of the batch share it.
            let scenario = SymbolScenario::prepare(&config)?;
            let single = scenario.run_symbol(config.seed)?;
            assert!(single.verified, "symbol results diverged from native model");
            // Independent symbols over all host threads (paper: 128).
            let symbols = threads as u32;
            let start = std::time::Instant::now();
            let outs = BatchRunner::with_workers(threads).run((0..symbols).collect(), |_ctx, sym| {
                scenario.run_symbol(config.seed.wrapping_add(u64::from(sym))).map_err(|e| e.to_string())
            });
            let wall = start.elapsed();
            let outs = outs.into_iter().collect::<Result<Vec<_>, String>>()?;
            assert!(outs.iter().all(|o| o.verified));
            // Aggregate simulated time vs elapsed: the paper's thread-scaling metric.
            let serial: f64 = outs.iter().map(|o| o.wall.as_secs_f64()).sum();
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>17} | {:>13} | {:>6.2} | {:>20} | {:>5.1}x",
                precision.paper_name(),
                min_sec(single.wall),
                single.cycles,
                single.mips,
                min_sec(wall),
                serial / wall.as_secs_f64(),
            );
        }
        println!();
    }
    println!(
        "Expected shape (paper): near-linear thread scaling; absolute runtime grows ~N^3 with MIMO size."
    );
    Ok(())
}
