//! Ablation D2 (DESIGN.md): the fast simulator's memory-latency model.
//!
//! The paper's Banshee assigns *every* memory access the conservative
//! worst-case non-contended latency (9 cycles). This ablation compares
//! three choices against the cycle-accurate reference:
//!
//! 1. uniform 9-cycle loads (the paper's configuration),
//! 2. topology-aware per-address latency (1..9 cycles by NUMA distance),
//! 3. optimistic uniform 1-cycle loads.
//!
//! Run: `cargo run -p terasim-bench --release --bin ablation_latency [--full]`

use terasim::experiments::{CycleEngine, ParallelConfig, ParallelScenario};
use terasim::serve::BatchRunner;
use terasim_bench::Scale;
use terasim_iss::{LatencyModel, RunConfig};
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Ablation D2 — fast-mode memory latency model"));
    println!("cluster: {} cores\n", scale.cores());
    println!(" MIMO  | precision | reference | uniform-9 (err)     | per-address (err)   | uniform-1 (err)");
    println!(
        " ------+-----------+-----------+---------------------+---------------------+--------------------"
    );
    let mut configs = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in [Precision::Half16, Precision::CDotp16] {
            configs.push((n, precision));
        }
    }
    // One configuration per batch job: the cycle-accurate reference and
    // all three fast-mode latency models run over that job's shared
    // artifact set (the fast-mode runs are single-threaded; results are
    // host-thread-invariant anyway).
    let rows = BatchRunner::new().run(configs, |ctx, (n, precision)| -> Result<_, String> {
        let config = ParallelConfig { cores: scale.cores(), n, precision, seed: 7, unroll: 2 };
        let scenario = ParallelScenario::prepare(&config).map_err(|e| e.to_string())?;
        let reference = scenario
            .run_cycle(CycleEngine::Parallel(ctx.claimable_threads()))
            .map_err(|e| e.to_string())?
            .cycles;
        let run = |per_address: bool, load: u32| -> Result<u64, String> {
            let rc = RunConfig {
                per_address_latency: per_address,
                latency: LatencyModel { load, ..LatencyModel::default() },
                ..RunConfig::default()
            };
            Ok(scenario.run_fast_configured(1, rc).map_err(|e| e.to_string())?.cluster_cycles)
        };
        Ok((n, precision, reference, run(false, 9)?, run(true, 9)?, run(false, 1)?))
    });
    for row in rows {
        let (n, precision, reference, conservative, topo_aware, optimistic) = row?;
        let err = |x: u64| 100.0 * (x as f64 - reference as f64) / reference as f64;
        println!(
            " {n:>2}x{n:<2} | {:<9} | {:>9} | {:>9} ({:>+6.1}%) | {:>9} ({:>+6.1}%) | {:>8} ({:>+6.1}%)",
            precision.paper_name(),
            reference,
            conservative,
            err(conservative),
            topo_aware,
            err(topo_aware),
            optimistic,
            err(optimistic),
        );
    }
    println!("\nReading: uniform-9 over-charges local accesses but absorbs some contention — the paper's");
    println!("\"conservative\" trade-off; per-address tracks topology but misses contention entirely.");
    Ok(())
}
