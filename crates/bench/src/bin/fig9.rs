//! Figure 9: BER vs SNR over the AWGN channel, 16QAM and 64QAM, for the
//! five DUT precisions against the 64-bit golden model.
//!
//! Paper: the three 16-bit implementations overlap the 64bDouble curve;
//! both 8-bit implementations lose ~10x BER at 18 dB because results are
//! truncated before the 16-bit matrix inversion.
//!
//! Each curve is served as a batch: `experiments::ber_curve` fans the SNR
//! points out as `BatchRunner` jobs (per-point seeds travel with the
//! jobs, so the curve is identical at every worker count).
//!
//! Run: `cargo run -p terasim-bench --release --bin fig9 [--full]`

use terasim::experiments::ber_curve;
use terasim::DetectorKind;
use terasim_bench::Scale;
use terasim_kernels::Precision;
use terasim_phy::{ChannelKind, Mimo, Modulation};

fn main() {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Figure 9 — BER vs SNR, AWGN channel"));
    let sizes: &[usize] = if scale == Scale::Full { &[4, 32] } else { &[4, 8] };
    let snrs = [6.5, 9.5, 12.5, 15.5, 18.5];
    let detectors = [
        DetectorKind::Reference64,
        DetectorKind::Native(Precision::Half16),
        DetectorKind::Native(Precision::WDotp16),
        DetectorKind::Native(Precision::CDotp16),
        DetectorKind::Native(Precision::Quarter8),
        DetectorKind::Native(Precision::WDotp8),
    ];

    for &n in sizes {
        for modulation in [Modulation::Qam16, Modulation::Qam64] {
            let scenario = Mimo { n_tx: n, n_rx: n, modulation, channel: ChannelKind::Awgn };
            println!("\n--- {n}x{n} {} AWGN ---", modulation.name());
            print!("{:<14}", "detector");
            for snr in snrs {
                print!(" | {snr:>6.1} dB");
            }
            println!();
            for kind in detectors {
                print!("{:<14}", kind.label());
                for p in ber_curve(scenario, &snrs, kind, scale.target_errors(), scale.max_iterations(), 90) {
                    print!(" | {:>8.2e}", p.ber());
                }
                println!();
            }
        }
    }
    println!(
        "\nExpected shape (paper): 16b curves overlap 64bDouble; 8b curves flatten ~10x worse at high SNR."
    );
}
