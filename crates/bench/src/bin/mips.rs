//! Simulator-speed measurement (paper §V-A): single-thread emulation
//! speed in MIPS and the per-iteration runtime quoted in the abstract
//! ("9.5 s – 3 min per OFDM symbol, 3.57 MIPS peak"), plus the
//! cycle-accurate engine benchmark: event-driven scheduler vs the seed's
//! naive full-scan, recorded machine-readably in `BENCH_cycle.json`.
//!
//! Run: `cargo run -p terasim-bench --release --bin mips [--full|--smoke]
//!       [--threads N] [--out PATH]`
//!
//! The JSON report defaults to `BENCH_cycle.json` for measurement runs
//! and to `BENCH_smoke.json` for `--smoke` (so CI smoke runs never
//! clobber the committed full-scale report); `--out` overrides either.
//! `--threads` caps the domain-sharded scaling sweep (default 4: the
//! 1024-core workload's four groups over 1/2/4 host threads, recorded as
//! `speedup_threads_{2,4}`).

use std::time::Duration;

use terasim::experiments::{self, BatchConfig, CycleEngine, ParallelConfig};
use terasim_bench::{arg_str, arg_u32, min_sec, Scale};
use terasim_kernels::Precision;

/// One measured cycle-engine run (best wall time of `reps`).
struct EngineRun {
    label: &'static str,
    wall: Duration,
    cycles: u64,
    instructions: u64,
}

impl EngineRun {
    fn sim_mips(&self) -> f64 {
        self.instructions as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }

    /// The per-instruction floor: host nanoseconds per simulated
    /// instruction (interpreter + softfloat + scheduler bookkeeping).
    fn ns_per_inst(&self) -> f64 {
        self.wall.as_secs_f64() * 1e9 / (self.instructions as f64).max(1.0)
    }
}

fn measure_engine(
    label: &'static str,
    config: &ParallelConfig,
    engine: CycleEngine,
    reps: u32,
) -> Result<EngineRun, Box<dyn std::error::Error>> {
    let mut best: Option<EngineRun> = None;
    for _ in 0..reps {
        let out = experiments::parallel_cycle_with_engine(config, engine)?;
        assert!(out.verified, "cycle run diverged from the native model");
        if best.as_ref().is_none_or(|b| out.wall < b.wall) {
            best =
                Some(EngineRun { label, wall: out.wall, cycles: out.cycles, instructions: out.instructions });
        }
    }
    Ok(best.expect("at least one rep"))
}

fn json_run(run: &EngineRun) -> String {
    format!(
        "    {{\"engine\": \"{}\", \"wall_s\": {:.6}, \"simulated_cycles\": {}, \"instructions\": {}, \"sim_mips\": {:.3}, \"ns_per_inst\": {:.3}}}",
        run.label,
        run.wall.as_secs_f64(),
        run.cycles,
        run.instructions,
        run.sim_mips(),
        run.ns_per_inst()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke runs default to their own report so CI never clobbers the
    // committed measurement file.
    let out_path = arg_str("--out", if smoke { "BENCH_smoke.json" } else { "BENCH_cycle.json" });
    println!("{}", scale.banner("Simulator speed — single-thread MIPS"));
    let nsc = if smoke { 16 } else { scale.nsc() };
    println!("one MC iteration = NSC {nsc} problems on one Snitch, one host thread\n");
    println!(" MIMO  | precision | instructions | wall      | MIPS");
    println!(" ------+-----------+--------------+-----------+-------");
    let mut best = 0.0f64;
    let sizes: &[u32] = if smoke { &[4] } else { scale.mimo_sizes() };
    for &n in sizes {
        for precision in [Precision::Half16, Precision::CDotp16] {
            let out = experiments::mc_symbol_single(&BatchConfig { n, precision, nsc, seed: 1, unroll: 2 })?;
            best = best.max(out.mips);
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>12} | {:>9} | {:>5.2}",
                precision.paper_name(),
                out.instructions,
                min_sec(out.wall),
                out.mips
            );
        }
    }
    println!("\npeak single-thread speed: {best:.2} MIPS (paper: 3.57 MIPS on EPYC-7742 with LLVM SBT)");

    // --- Cycle-accurate engine: event-driven vs the seed's naive scan ---
    let cores = if scale == Scale::Full { 1024 } else { 64 };
    // Smoke workloads are milliseconds each; best-of-5 keeps the gate's
    // input stable on noisy CI runners.
    let reps = if smoke { 5 } else { 3 };
    let precision = Precision::CDotp16;
    let n = 4;
    println!("\n=== Cycle engine — event-driven ready queue vs naive full scan ===");
    println!("workload: parallel MMSE, {cores} cores, {n}x{n} {}, best of {reps}\n", precision.paper_name());
    let config = ParallelConfig { cores, n, precision, seed: 50, unroll: 2 };
    let event = measure_engine("event_driven", &config, CycleEngine::EventDriven, reps)?;
    let naive = measure_engine("naive_scan", &config, CycleEngine::NaiveScan, reps)?;
    assert_eq!(
        (event.cycles, event.instructions),
        (naive.cycles, naive.instructions),
        "schedulers must agree bit-exactly"
    );
    let speedup = naive.wall.as_secs_f64() / event.wall.as_secs_f64().max(1e-9);
    for run in [&event, &naive] {
        println!(
            " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
            run.label,
            min_sec(run.wall),
            run.cycles,
            run.sim_mips(),
            run.ns_per_inst()
        );
    }
    println!(
        "\nevent-driven speedup vs seed engine (MMSE, full occupancy): {speedup:.2}x (identical CycleStats)"
    );
    println!("per-instruction floor (event engine, cycle mode): {:.1} ns/inst", event.ns_per_inst());

    // --- Domain-sharded engine: cycle-mode thread scaling at full scale
    // (1024 cores = 4 groups = 4 arbitration domains). The 1-thread run
    // is the sequential reference (`run`); `run_parallel` must agree
    // bit-exactly at every thread count. `--threads` caps the sweep. ---
    let scale_cores = 1024u32;
    let threads_cap = arg_u32("--threads", 4) as usize;
    let scale_reps = 3;
    let sconfig = ParallelConfig { cores: scale_cores, n, precision, seed: 50, unroll: 2 };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n=== Cycle engine — domain-sharded scaling (epoch-synchronized groups) ===");
    println!(
        "workload: parallel MMSE, {scale_cores} cores / 4 domains, {n}x{n} {}, best of {scale_reps}, {host_cpus} host CPUs\n",
        precision.paper_name()
    );
    let base = measure_engine("event_1thread", &sconfig, CycleEngine::EventDriven, scale_reps)?;
    let naive_scale = measure_engine("naive_scan", &sconfig, CycleEngine::NaiveScan, scale_reps)?;
    let mut thread_runs: Vec<(usize, EngineRun)> = Vec::new();
    for (t, label) in [(2usize, "parallel_2"), (4, "parallel_4")] {
        if t <= threads_cap {
            thread_runs.push((t, measure_engine(label, &sconfig, CycleEngine::Parallel(t), scale_reps)?));
        }
    }
    for run in std::iter::once(&naive_scale).chain(thread_runs.iter().map(|(_, r)| r)) {
        assert_eq!(
            (run.cycles, run.instructions),
            (base.cycles, base.instructions),
            "sharded engine must agree bit-exactly with the sequential reference"
        );
    }
    for run in
        std::iter::once(&base).chain(std::iter::once(&naive_scale)).chain(thread_runs.iter().map(|(_, r)| r))
    {
        println!(
            " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
            run.label,
            min_sec(run.wall),
            run.cycles,
            run.sim_mips(),
            run.ns_per_inst()
        );
    }
    let scale_event_vs_naive = naive_scale.wall.as_secs_f64() / base.wall.as_secs_f64().max(1e-9);
    let mut speedups_json = String::new();
    for (t, run) in &thread_runs {
        let s = base.wall.as_secs_f64() / run.wall.as_secs_f64().max(1e-9);
        println!("thread scaling x{t}: {s:.2}x vs 1-thread sequential");
        speedups_json.push_str(&format!("      \"speedup_threads_{t}\": {s:.3},\n"));
    }
    println!("event(1 thread) vs naive at scale: {scale_event_vs_naive:.2}x (identical CycleStats)");
    let scaling_runs_json: String = std::iter::once(&base)
        .chain(std::iter::once(&naive_scale))
        .chain(thread_runs.iter().map(|(_, r)| r))
        .map(json_run)
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_json = format!(
        "    {{\n      \"kind\": \"parallel_mmse_scaling\",\n      \"cores\": {scale_cores}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {scale_reps}, \"domains\": 4,\n      \"host_cpus\": {host_cpus},\n      \"runs\": [\n{}\n      ],\n{}      \"speedup_event_vs_naive_at_scale\": {scale_event_vs_naive:.3},\n      \"stats_identical\": true\n    }}",
        precision.paper_name(),
        scaling_runs_json,
        speedups_json,
    );

    // --- Barrier-skew workload: the parked-core pathology the event engine
    // removes (naive rescans every context per step; parked harts here are
    // re-queued by the wake channel instead). ---
    println!("\n=== Cycle engine — barrier-skew (N-1 harts parked in wfi) ===");
    let spin = if smoke { 20_000 } else { 200_000 };
    let (skew_event, skew_naive, skew_cycles) = measure_skew(cores, spin, reps);
    let skew_speedup = skew_naive.as_secs_f64() / skew_event.as_secs_f64().max(1e-9);
    println!(
        " event_driven  | wall {:>9} | {skew_cycles:>12} cycles\n naive_scan    | wall {:>9} | {skew_cycles:>12} cycles",
        min_sec(skew_event),
        min_sec(skew_naive),
    );
    println!("\nevent-driven speedup vs seed engine (barrier skew): {skew_speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"cycle_engine\",\n  \"scale\": \"{}\",\n  \"workloads\": [\n    {{\n      \"kind\": \"parallel_mmse\",\n      \"cores\": {cores}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {reps},\n      \"runs\": [\n    {},\n    {}\n      ],\n      \"speedup_event_vs_naive\": {speedup:.3},\n      \"ns_per_inst_event\": {:.3},\n      \"stats_identical\": true\n    }},\n    {{\n      \"kind\": \"barrier_skew\",\n      \"cores\": {cores}, \"straggler_spin\": {spin}, \"reps\": {reps},\n      \"runs\": [\n        {{\"engine\": \"event_driven\", \"wall_s\": {:.6}, \"simulated_cycles\": {skew_cycles}}},\n        {{\"engine\": \"naive_scan\", \"wall_s\": {:.6}, \"simulated_cycles\": {skew_cycles}}}\n      ],\n      \"speedup_event_vs_naive\": {skew_speedup:.3},\n      \"stats_identical\": true\n    }},\n{scaling_json}\n  ]\n}}\n",
        // `--smoke` wins the label: it overrides the workload parameters
        // even when `--full` is also passed.
        if smoke {
            "smoke"
        } else if scale == Scale::Full {
            "full"
        } else {
            "reduced"
        },
        precision.paper_name(),
        json_run(&event),
        json_run(&naive),
        event.ns_per_inst(),
        skew_event.as_secs_f64(),
        skew_naive.as_secs_f64(),
    );
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Builds and times the barrier-skew guest: hart 0 spins `spin` loop
/// iterations while every other hart parks in `wfi`, then wakes them.
/// Returns (event wall, naive wall, simulated cycles), best of `reps`,
/// after asserting both engines report identical stats.
fn measure_skew(cores: u32, spin: i32, reps: u32) -> (Duration, Duration, u64) {
    use terasim_riscv::{Assembler, Image, Reg, Segment};
    use terasim_terapool::{CycleSim, Topology};

    let topo = Topology::scaled(cores);
    let mut a = Assembler::new(Topology::L2_BASE);
    a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
    let waker = a.new_label();
    a.beqz(Reg::T0, waker);
    a.wfi();
    let done = a.new_label();
    a.j(done);
    a.bind(waker);
    a.li(Reg::T1, spin);
    let top = a.new_label();
    a.bind(top);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, top);
    a.li(Reg::T2, Topology::CTRL_WAKE_ALL as i32);
    a.li(Reg::T3, 1);
    a.sw(Reg::T3, 0, Reg::T2);
    a.bind(done);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().expect("skew guest assembles")));

    let mut best = (Duration::MAX, Duration::MAX, 0u64);
    let mut reference: Option<Vec<terasim_terapool::CycleStats>> = None;
    for _ in 0..reps {
        for naive in [false, true] {
            let mut sim = CycleSim::new(topo, &image).expect("skew guest translates");
            let start = std::time::Instant::now();
            let result =
                if naive { sim.run_naive(cores).expect("runs") } else { sim.run(cores).expect("runs") };
            let wall = start.elapsed();
            assert!(!result.deadlocked, "skew guest must finish");
            match &reference {
                Some(stats) => assert_eq!(*stats, result.per_core, "engines diverged on skew guest"),
                None => reference = Some(result.per_core.clone()),
            }
            best.2 = result.cycles;
            if naive {
                best.1 = best.1.min(wall);
            } else {
                best.0 = best.0.min(wall);
            }
        }
    }
    best
}
