//! Simulator-speed measurement (paper §V-A): single-thread emulation
//! speed in MIPS and the per-iteration runtime quoted in the abstract
//! ("9.5 s – 3 min per OFDM symbol, 3.57 MIPS peak"), plus the
//! cycle-accurate engine benchmark: event-driven scheduler vs the seed's
//! naive full-scan, recorded machine-readably in `BENCH_cycle.json`.
//!
//! Run: `cargo run -p terasim-bench --release --bin mips [--full|--smoke]
//!       [--threads N] [--jobs N] [--serve] [--fusion-report] [--out PATH]`
//!
//! The JSON report defaults to `BENCH_cycle.json` for measurement runs
//! and to `BENCH_smoke.json` for `--smoke` (so CI smoke runs never
//! clobber the committed full-scale report); `--out` overrides either.
//! `--threads` caps the domain-sharded scaling sweep (default 4: the
//! 1024-core workload's four groups over 1/2/4 host threads, recorded as
//! `speedup_threads_{2,4}`). `--jobs` sizes the batch-throughput
//! measurement: jobs/sec over a shared-artifact batch with fresh per-job
//! memory (`jobs_per_sec_shared`), with pool-recycled memory
//! (`jobs_per_sec_pooled`, `symbol_amortization_pooled`) and with
//! per-job artifact rebuild (`jobs_per_sec_rebuild`), the measured
//! per-job setup cost the pool deletes (`per_job_setup_ns{,_pooled}`),
//! and the ISS BER-batch amortizations (`batch_amortization`,
//! `ber_amortization_pooled`).
//!
//! `--serve` additionally drives the persistent serving daemon
//! (`terasim::daemon`) with saturating mixed open-loop traffic and
//! records its sustained throughput (`serve_jobs_per_sec`), latency
//! percentiles (`serve_p50_ns`, `serve_p99_ns`, queueing included) and
//! cross-request artifact-cache hit rate (`serve_cache_hit_rate`).
//!
//! `--fusion-report` additionally times the fast engine with
//! superinstruction fusion + SPMD convergence on vs off (bit-identical
//! results asserted) on the parallel-MMSE and OFDM-symbol workloads,
//! records `ns_per_inst_fused`, `fast_speedup_fused` and
//! `symbol_speedup_fused`, and runs the instrumented profile pass for
//! the dynamic uop-pair histogram and fused coverage (`fused_pct`).
//!
//! `--epoch-report` additionally A/Bs the sharded cycle engine's
//! adaptive epoch cadence against the fixed 4-cycle reference on the
//! 1024-core MMSE (full occupancy) and on a multi-domain barrier-skew
//! guest (one straggler domain, the rest parked), asserts bit-identical
//! stats, and records the adaptive telemetry: `avg_epoch_len`,
//! `extended_epoch_pct`, `ns_per_inst_event_adaptive`,
//! `speedup_threads_4_adaptive` and `speedup_adaptive_vs_fixed_skew`.
//!
//! `--cycle-engine {event,naive,sharded}` selects a scheduler for a
//! one-off A/B measurement on the MMSE workload (printed, not recorded);
//! unknown values are a hard error naming the flag.

use std::time::{Duration, Instant};

use terasim::experiments::{
    self, BatchConfig, CycleEngine, ParallelConfig, ParallelScenario, SymbolScenario,
};
use terasim::serve::BatchRunner;
use terasim_bench::{arg_str, arg_u32, min_sec, Scale};
use terasim_iss::{EpochMode, FusionMode, RunConfig};
use terasim_kernels::Precision;

/// One measured cycle-engine run (best wall time of `reps`).
struct EngineRun {
    label: &'static str,
    wall: Duration,
    cycles: u64,
    instructions: u64,
}

impl EngineRun {
    fn sim_mips(&self) -> f64 {
        self.instructions as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }

    /// The per-instruction floor: host nanoseconds per simulated
    /// instruction (interpreter + softfloat + scheduler bookkeeping).
    fn ns_per_inst(&self) -> f64 {
        self.wall.as_secs_f64() * 1e9 / (self.instructions as f64).max(1.0)
    }
}

fn measure_engine(
    label: &'static str,
    config: &ParallelConfig,
    engine: CycleEngine,
    reps: u32,
) -> Result<EngineRun, Box<dyn std::error::Error>> {
    let mut best: Option<EngineRun> = None;
    for _ in 0..reps {
        let out = experiments::parallel_cycle_with_engine(config, engine)?;
        assert!(out.verified, "cycle run diverged from the native model");
        if best.as_ref().is_none_or(|b| out.wall < b.wall) {
            best =
                Some(EngineRun { label, wall: out.wall, cycles: out.cycles, instructions: out.instructions });
        }
    }
    Ok(best.expect("at least one rep"))
}

fn json_run(run: &EngineRun) -> String {
    format!(
        "    {{\"engine\": \"{}\", \"wall_s\": {:.6}, \"simulated_cycles\": {}, \"instructions\": {}, \"sim_mips\": {:.3}, \"ns_per_inst\": {:.3}}}",
        run.label,
        run.wall.as_secs_f64(),
        run.cycles,
        run.instructions,
        run.sim_mips(),
        run.ns_per_inst()
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke runs default to their own report so CI never clobbers the
    // committed measurement file.
    let out_path = arg_str("--out", if smoke { "BENCH_smoke.json" } else { "BENCH_cycle.json" });
    // CLI-selected scheduler for one-off A/B runs. Parsed up front so an
    // invalid value fails before any measurement.
    let engine_flag = match arg_str("--cycle-engine", "").as_str() {
        "" => None,
        "event" => Some(CycleEngine::EventDriven),
        "naive" => Some(CycleEngine::NaiveScan),
        "sharded" => Some(CycleEngine::Parallel((arg_u32("--threads", 4) as usize).max(1))),
        other => {
            return Err(format!(
                "invalid value for --cycle-engine: {other:?} (expected event|naive|sharded)"
            )
            .into());
        }
    };
    println!("{}", scale.banner("Simulator speed — single-thread MIPS"));
    let nsc = if smoke { 16 } else { scale.nsc() };
    println!("one MC iteration = NSC {nsc} problems on one Snitch, one host thread\n");
    println!(" MIMO  | precision | instructions | wall      | MIPS");
    println!(" ------+-----------+--------------+-----------+-------");
    let mut best = 0.0f64;
    let sizes: &[u32] = if smoke { &[4] } else { scale.mimo_sizes() };
    for &n in sizes {
        for precision in [Precision::Half16, Precision::CDotp16] {
            let out = experiments::mc_symbol_single(&BatchConfig { n, precision, nsc, seed: 1, unroll: 2 })?;
            best = best.max(out.mips);
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>12} | {:>9} | {:>5.2}",
                precision.paper_name(),
                out.instructions,
                min_sec(out.wall),
                out.mips
            );
        }
    }
    println!("\npeak single-thread speed: {best:.2} MIPS (paper: 3.57 MIPS on EPYC-7742 with LLVM SBT)");

    // --- Cycle-accurate engine: event-driven vs the seed's naive scan ---
    let cores = if scale == Scale::Full { 1024 } else { 64 };
    // Smoke workloads are milliseconds each; best-of-5 keeps the gate's
    // input stable on noisy CI runners.
    let reps = if smoke { 5 } else { 3 };
    let precision = Precision::CDotp16;
    let n = 4;
    println!("\n=== Cycle engine — event-driven ready queue vs naive full scan ===");
    println!("workload: parallel MMSE, {cores} cores, {n}x{n} {}, best of {reps}\n", precision.paper_name());
    let config = ParallelConfig { cores, n, precision, seed: 50, unroll: 2 };
    let event = measure_engine("event_driven", &config, CycleEngine::EventDriven, reps)?;
    let naive = measure_engine("naive_scan", &config, CycleEngine::NaiveScan, reps)?;
    assert_eq!(
        (event.cycles, event.instructions),
        (naive.cycles, naive.instructions),
        "schedulers must agree bit-exactly"
    );
    let speedup = naive.wall.as_secs_f64() / event.wall.as_secs_f64().max(1e-9);
    for run in [&event, &naive] {
        println!(
            " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
            run.label,
            min_sec(run.wall),
            run.cycles,
            run.sim_mips(),
            run.ns_per_inst()
        );
    }
    println!(
        "\nevent-driven speedup vs seed engine (MMSE, full occupancy): {speedup:.2}x (identical CycleStats)"
    );
    println!("per-instruction floor (event engine, cycle mode): {:.1} ns/inst", event.ns_per_inst());

    // --- CLI-selected scheduler (the `--cycle-engine` A/B hook): one
    // extra measured run of the chosen engine on the same MMSE workload,
    // printed for side-by-side comparison but not recorded in the JSON
    // report (the standard entries keep their fixed meaning). ---
    if let Some(engine) = engine_flag {
        let label = match engine {
            CycleEngine::EventDriven => "event_driven",
            CycleEngine::NaiveScan => "naive_scan",
            CycleEngine::Parallel(_) => "sharded",
        };
        let run = measure_engine(label, &config, engine, reps)?;
        println!("\n=== Cycle engine — CLI-selected scheduler (--cycle-engine {label}) ===");
        println!(
            " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
            run.label,
            min_sec(run.wall),
            run.cycles,
            run.sim_mips(),
            run.ns_per_inst()
        );
    }

    // --- Domain-sharded engine: cycle-mode thread scaling at full scale
    // (1024 cores = 4 groups = 4 arbitration domains). The 1-thread run
    // is the sequential reference (`run`); `run_parallel` must agree
    // bit-exactly at every thread count. `--threads` caps the sweep. ---
    let scale_cores = 1024u32;
    let threads_cap = arg_u32("--threads", 4) as usize;
    let scale_reps = 3;
    let sconfig = ParallelConfig { cores: scale_cores, n, precision, seed: 50, unroll: 2 };
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n=== Cycle engine — domain-sharded scaling (epoch-synchronized groups) ===");
    println!(
        "workload: parallel MMSE, {scale_cores} cores / 4 domains, {n}x{n} {}, best of {scale_reps}, {host_cpus} host CPUs\n",
        precision.paper_name()
    );
    let base = measure_engine("event_1thread", &sconfig, CycleEngine::EventDriven, scale_reps)?;
    let naive_scale = measure_engine("naive_scan", &sconfig, CycleEngine::NaiveScan, scale_reps)?;
    let mut thread_runs: Vec<(usize, EngineRun)> = Vec::new();
    for (t, label) in [(2usize, "parallel_2"), (4, "parallel_4")] {
        if t <= threads_cap {
            thread_runs.push((t, measure_engine(label, &sconfig, CycleEngine::Parallel(t), scale_reps)?));
        }
    }
    for run in std::iter::once(&naive_scale).chain(thread_runs.iter().map(|(_, r)| r)) {
        assert_eq!(
            (run.cycles, run.instructions),
            (base.cycles, base.instructions),
            "sharded engine must agree bit-exactly with the sequential reference"
        );
    }
    for run in
        std::iter::once(&base).chain(std::iter::once(&naive_scale)).chain(thread_runs.iter().map(|(_, r)| r))
    {
        println!(
            " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
            run.label,
            min_sec(run.wall),
            run.cycles,
            run.sim_mips(),
            run.ns_per_inst()
        );
    }
    let scale_event_vs_naive = naive_scale.wall.as_secs_f64() / base.wall.as_secs_f64().max(1e-9);
    let mut speedups_json = String::new();
    let mut speedup_threads4: Option<f64> = None;
    for (t, run) in &thread_runs {
        let s = base.wall.as_secs_f64() / run.wall.as_secs_f64().max(1e-9);
        println!("thread scaling x{t}: {s:.2}x vs 1-thread sequential");
        speedups_json.push_str(&format!("      \"speedup_threads_{t}\": {s:.3},\n"));
        if *t == 4 {
            speedup_threads4 = Some(s);
        }
    }
    println!("event(1 thread) vs naive at scale: {scale_event_vs_naive:.2}x (identical CycleStats)");
    let scaling_runs_json: String = std::iter::once(&base)
        .chain(std::iter::once(&naive_scale))
        .chain(thread_runs.iter().map(|(_, r)| r))
        .map(json_run)
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_json = format!(
        "    {{\n      \"kind\": \"parallel_mmse_scaling\",\n      \"cores\": {scale_cores}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {scale_reps}, \"domains\": 4,\n      \"host_cpus\": {host_cpus},\n      \"runs\": [\n{}\n      ],\n{}      \"speedup_event_vs_naive_at_scale\": {scale_event_vs_naive:.3},\n      \"stats_identical\": true\n    }}",
        precision.paper_name(),
        scaling_runs_json,
        speedups_json,
    );

    // --- Barrier-skew workload: the parked-core pathology the event engine
    // removes (naive rescans every context per step; parked harts here are
    // re-queued by the wake channel instead). ---
    println!("\n=== Cycle engine — barrier-skew (N-1 harts parked in wfi) ===");
    let spin = if smoke { 20_000 } else { 200_000 };
    let (skew_event, skew_naive, skew_cycles) = measure_skew(cores, spin, reps);
    let skew_speedup = skew_naive.as_secs_f64() / skew_event.as_secs_f64().max(1e-9);
    println!(
        " event_driven  | wall {:>9} | {skew_cycles:>12} cycles\n naive_scan    | wall {:>9} | {skew_cycles:>12} cycles",
        min_sec(skew_event),
        min_sec(skew_naive),
    );
    println!("\nevent-driven speedup vs seed engine (barrier skew): {skew_speedup:.2}x");

    // --- Adaptive epochs: the quiescence-extended cadence vs the fixed
    // 4-cycle reference. Two A/Bs, both asserted bit-identical: the
    // 1024-core MMSE (full occupancy, loads everywhere — extensions
    // rarely apply, so this bounds the decide-overhead regression) and a
    // multi-domain barrier-skew guest (one straggler domain, the rest
    // parked in wfi — the sole-active grant's home turf). The adaptive
    // run's epoch telemetry feeds the gate: a zero extended share on the
    // skew guest means the predicate stopped firing. ---
    let epoch_json = if std::env::args().any(|a| a == "--epoch-report") {
        println!("\n=== Cycle engine — adaptive epochs vs fixed cadence ===");
        println!(
            "workloads: parallel MMSE ({scale_cores} cores / 4 domains) and barrier-skew ({scale_cores} cores), 1 host thread, best of {scale_reps}\n"
        );
        let fixed_scn = ParallelScenario::prepare_with(&sconfig, FusionMode::default(), EpochMode::Fixed)?;
        let mut fixed_best: Option<EngineRun> = None;
        for _ in 0..scale_reps {
            let out = fixed_scn.run_cycle(CycleEngine::EventDriven)?;
            assert!(out.verified, "fixed-epoch cycle run diverged from the native model");
            if fixed_best.as_ref().is_none_or(|b| out.wall < b.wall) {
                fixed_best = Some(EngineRun {
                    label: "event_fixed",
                    wall: out.wall,
                    cycles: out.cycles,
                    instructions: out.instructions,
                });
            }
        }
        let fixed = fixed_best.expect("at least one rep");
        assert_eq!(
            (fixed.cycles, fixed.instructions),
            (base.cycles, base.instructions),
            "adaptive epochs must be bit-identical to the fixed cadence"
        );
        let mmse_adaptive_speedup = fixed.wall.as_secs_f64() / base.wall.as_secs_f64().max(1e-9);
        for run in [&base, &fixed] {
            println!(
                " {:<13} | wall {:>9} | {:>12} cycles | sim speed {:>8.2} MIPS | {:>6.1} ns/inst",
                run.label,
                min_sec(run.wall),
                run.cycles,
                run.sim_mips(),
                run.ns_per_inst()
            );
        }
        println!(
            "adaptive vs fixed (MMSE, full occupancy): {mmse_adaptive_speedup:.2}x (identical CycleStats)"
        );

        let (skew_adaptive, skew_fixed, ereport, eskew_cycles) = measure_skew_epochs(scale_cores, spin, reps);
        let skew_adaptive_speedup = skew_fixed.as_secs_f64() / skew_adaptive.as_secs_f64().max(1e-9);
        println!(
            "\n adaptive      | wall {:>9} | {eskew_cycles:>12} cycles\n fixed         | wall {:>9} | {eskew_cycles:>12} cycles",
            min_sec(skew_adaptive),
            min_sec(skew_fixed),
        );
        println!(
            "adaptive vs fixed (barrier skew): {skew_adaptive_speedup:.2}x — \
             {} windows, avg epoch {:.1} cycles, {:.1}% extended, {} trimmed",
            ereport.windows,
            ereport.avg_epoch_len(),
            ereport.extended_pct(),
            ereport.trimmed
        );
        assert!(
            ereport.extended_pct() > 0.0,
            "barrier-skew guest granted no extended epochs — the quiescence predicate stopped firing"
        );
        let threads4_json = speedup_threads4
            .map(|s| format!("      \"speedup_threads_4_adaptive\": {s:.3},\n"))
            .unwrap_or_default();
        format!(
            ",\n    {{\n      \"kind\": \"adaptive_epochs\",\n      \"cores\": {scale_cores}, \"skew_straggler_spin\": {spin}, \"reps\": {scale_reps},\n      \"ns_per_inst_event_fixed\": {:.3},\n      \"ns_per_inst_event_adaptive\": {:.3},\n      \"speedup_adaptive_vs_fixed_mmse\": {mmse_adaptive_speedup:.3},\n{threads4_json}      \"skew_wall_s_adaptive\": {:.6}, \"skew_wall_s_fixed\": {:.6},\n      \"speedup_adaptive_vs_fixed_skew\": {skew_adaptive_speedup:.3},\n      \"windows\": {}, \"extended_windows\": {}, \"trimmed_windows\": {},\n      \"avg_epoch_len\": {:.3},\n      \"extended_epoch_pct\": {:.3},\n      \"stats_identical\": true\n    }}",
            fixed.ns_per_inst(),
            base.ns_per_inst(),
            skew_adaptive.as_secs_f64(),
            skew_fixed.as_secs_f64(),
            ereport.windows,
            ereport.extended,
            ereport.trimmed,
            ereport.avg_epoch_len(),
            ereport.extended_pct(),
        )
    } else {
        String::new()
    };

    // --- Batch serving: jobs/sec over one shared artifact set (with and
    // without cluster-memory recycling) vs per-job artifact rebuild.
    // Jobs are small OFDM symbols (setup-heavy relative to their run —
    // the BER-point / figure-sweep profile the serve layer targets); all
    // three paths run through the same BatchRunner scheduling, so the
    // ratios isolate exactly the deleted fixed costs: `shared` deletes
    // the per-run artifact rebuild, `pooled` additionally deletes the
    // per-job 20 MiB ClusterMem mmap/munmap round trip. ---
    let jobs = arg_u32("--jobs", 16);
    let batch_nsc = 8u32;
    let bconfig = BatchConfig { n, precision, nsc: batch_nsc, seed: 90, unroll: 2 };
    let workers = host_cpus;
    println!("\n=== Batch serving — shared artifacts (fresh / pooled memory) vs per-job rebuild ===");
    println!(
        "workload: {jobs} OFDM-symbol jobs (NSC {batch_nsc}, {n}x{n} {}), {workers} worker(s), best of {reps}\n",
        precision.paper_name()
    );
    let seeds: Vec<u32> = (0..jobs).collect();
    let mut shared_best = Duration::MAX;
    let mut pooled_best = Duration::MAX;
    let mut rebuild_best = Duration::MAX;
    let mut batch_insts = 0u64;
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for _ in 0..reps {
        // Shared path: one artifact build, `jobs` thin per-job states,
        // each allocating a fresh cluster memory.
        let t0 = Instant::now();
        let scenario = SymbolScenario::prepare(&bconfig)?;
        let outs = BatchRunner::with_workers(workers).run(seeds.clone(), |_ctx, j| {
            scenario.run_symbol(bconfig.seed.wrapping_add(u64::from(j))).map_err(|e| e.to_string())
        });
        let shared_wall = t0.elapsed();
        let outs = outs.into_iter().collect::<Result<Vec<_>, String>>()?;
        assert!(outs.iter().all(|o| o.verified), "batch job diverged from the native model");
        let key: Vec<(u64, u64)> = outs.iter().map(|o| (o.cycles, o.instructions)).collect();

        // Pooled path: same shared artifacts, but every worker lane
        // recycles one cluster arena through the batch's MemPool.
        let t1 = Instant::now();
        let pscenario = SymbolScenario::prepare(&bconfig)?;
        let pouts =
            BatchRunner::with_workers(workers).run_pooled(pscenario.artifacts(), seeds.clone(), |ctx, j| {
                pscenario
                    .run_symbol_pooled(
                        ctx.pool().expect("pooled batch"),
                        bconfig.seed.wrapping_add(u64::from(j)),
                    )
                    .map_err(|e| e.to_string())
            });
        let pooled_wall = t1.elapsed();
        let pouts = pouts.into_iter().collect::<Result<Vec<_>, String>>()?;
        let pkey: Vec<(u64, u64)> = pouts.iter().map(|o| (o.cycles, o.instructions)).collect();
        assert_eq!(key, pkey, "pooled batch must be bit-identical to fresh-memory jobs");

        // Rebuild path: identical jobs and scheduling, but every job
        // rebuilds its own artifacts (the pre-serve-layer behaviour).
        let t2 = Instant::now();
        let routs = BatchRunner::with_workers(workers).run(seeds.clone(), |_ctx, j| {
            let mut c = bconfig;
            c.seed = bconfig.seed.wrapping_add(u64::from(j));
            experiments::mc_symbol_single(&c).map_err(|e| e.to_string())
        });
        let rebuild_wall = t2.elapsed();
        let routs = routs.into_iter().collect::<Result<Vec<_>, String>>()?;
        let rkey: Vec<(u64, u64)> = routs.iter().map(|o| (o.cycles, o.instructions)).collect();
        assert_eq!(key, rkey, "shared-artifact batch must be bit-identical to per-job rebuilds");
        match &reference {
            Some(k) => assert_eq!(*k, key, "batch results must be identical across reps"),
            None => reference = Some(key),
        }
        if shared_wall < shared_best {
            shared_best = shared_wall;
            batch_insts = outs.iter().map(|o| o.instructions).sum();
        }
        pooled_best = pooled_best.min(pooled_wall);
        rebuild_best = rebuild_best.min(rebuild_wall);
    }
    let jps_shared = f64::from(jobs) / shared_best.as_secs_f64().max(1e-9);
    let jps_pooled = f64::from(jobs) / pooled_best.as_secs_f64().max(1e-9);
    let jps_rebuild = f64::from(jobs) / rebuild_best.as_secs_f64().max(1e-9);
    let symbol_amortization = jps_shared / jps_rebuild.max(1e-9);
    let symbol_amortization_pooled = jps_pooled / jps_rebuild.max(1e-9);
    let ns_per_inst_batch = shared_best.as_secs_f64() * 1e9 / (batch_insts as f64).max(1.0);

    // Where the per-job fixed cost goes: bare job setup (cluster-memory
    // allocation or pool acquire+reset, image load), amortized per job.
    let setup_scenario = SymbolScenario::prepare(&bconfig)?;
    let setup_reps = jobs.max(8);
    let t = Instant::now();
    for _ in 0..setup_reps {
        std::hint::black_box(terasim_terapool::FastSim::from_artifacts(std::sync::Arc::clone(
            setup_scenario.artifacts(),
        )));
    }
    let per_job_setup_ns = t.elapsed().as_secs_f64() * 1e9 / f64::from(setup_reps);
    let setup_pool = terasim_terapool::MemPool::new(std::sync::Arc::clone(setup_scenario.artifacts()));
    // Warm: the first acquire allocates; every later one recycles.
    drop(terasim_terapool::FastSim::from_pool(&setup_pool));
    let t = Instant::now();
    for _ in 0..setup_reps {
        std::hint::black_box(terasim_terapool::FastSim::from_pool(&setup_pool));
    }
    let per_job_setup_ns_pooled = t.elapsed().as_secs_f64() * 1e9 / f64::from(setup_reps);

    println!(
        " shared artifacts | wall {:>9} | {jps_shared:>8.1} jobs/s | {ns_per_inst_batch:>6.1} ns/inst amortized",
        min_sec(shared_best)
    );
    println!(" pooled memory    | wall {:>9} | {jps_pooled:>8.1} jobs/s |", min_sec(pooled_best));
    println!(" per-job rebuild  | wall {:>9} | {jps_rebuild:>8.1} jobs/s |", min_sec(rebuild_best));
    println!(
        "\nsymbol-job amortization: {symbol_amortization:.2}x jobs/sec shared, \
         {symbol_amortization_pooled:.2}x pooled (identical per-job results)"
    );
    println!(
        "per-job setup: {:.0} us fresh ClusterMem vs {:.0} us pooled reset — the fixed cost the pool deletes",
        per_job_setup_ns / 1e3,
        per_job_setup_ns_pooled / 1e3
    );

    // The headline amortization metric runs the paper's actual batch
    // shape: an ISS-in-the-loop BER curve, one job per SNR point. The
    // shared path instantiates one hardware-in-the-loop detector (kernel
    // image, translated program, lowered table, cluster memory) per
    // *worker lane*; the rebuild path instantiates one per *job* — the
    // pre-serve-layer cost model. Point jobs are short relative to the
    // detector build, so the deleted rebuild shows directly in jobs/sec.
    let ber_scenario = terasim_phy::Mimo {
        n_tx: 4,
        n_rx: 4,
        modulation: terasim_phy::Modulation::Qam16,
        channel: terasim_phy::ChannelKind::Rayleigh,
    };
    let ber_kind = terasim::DetectorKind::Iss(precision);
    let (ber_errors, ber_iters) = (64u64, 200u64);
    let snrs: Vec<f64> = (0..jobs).map(|i| 2.0 + 14.0 * f64::from(i) / f64::from(jobs.max(2) - 1)).collect();
    println!(
        "\nISS-in-the-loop BER batch: {jobs} SNR-point jobs, detector per lane vs pooled per job vs per job"
    );
    let mut ber_shared_best = Duration::MAX;
    let mut ber_pooled_best = Duration::MAX;
    let mut ber_rebuild_best = Duration::MAX;
    let mut ber_reference: Option<Vec<terasim_phy::BerPoint>> = None;
    // Warm the lazy softfloat tables out of the measurement.
    let _ = terasim_phy::ber_jobs(ber_scenario, &snrs, 5)[0].run(&*ber_kind.instantiate(4), 4, 4);
    for _ in 0..reps {
        let t0 = Instant::now();
        let lanes: Vec<_> = (0..workers.min(jobs as usize)).map(|_| ber_kind.instantiate(4)).collect();
        let shared = BatchRunner::with_workers(workers)
            .run(terasim_phy::ber_jobs(ber_scenario, &snrs, 5), |ctx, job| {
                job.run(&*lanes[ctx.worker() % lanes.len()], ber_errors, ber_iters)
            });
        let shared_wall = t0.elapsed();
        // Pooled path: one detector per *job* (the serving shape), but
        // each draws shared artifacts + a recycled cluster arena from a
        // per-batch pool, so the per-job detector costs ~nothing.
        let t1 = Instant::now();
        let pool = ber_kind.memory_pool(4).expect("ISS kinds own cluster memory");
        let pooled = BatchRunner::with_workers(workers)
            .run(terasim_phy::ber_jobs(ber_scenario, &snrs, 5), |_ctx, job| {
                job.run(&*ber_kind.instantiate_pooled(4, &pool), ber_errors, ber_iters)
            });
        let pooled_wall = t1.elapsed();
        let t2 = Instant::now();
        let rebuilt = BatchRunner::with_workers(workers)
            .run(terasim_phy::ber_jobs(ber_scenario, &snrs, 5), |_ctx, job| {
                job.run(&*ber_kind.instantiate(4), ber_errors, ber_iters)
            });
        let rebuild_wall = t2.elapsed();
        assert_eq!(shared, rebuilt, "shared-artifact BER batch diverged from per-job rebuilds");
        assert_eq!(shared, pooled, "pooled-detector BER batch diverged from per-job rebuilds");
        match &ber_reference {
            Some(r) => assert_eq!(*r, shared, "BER batch must be identical across reps"),
            None => ber_reference = Some(shared),
        }
        ber_shared_best = ber_shared_best.min(shared_wall);
        ber_pooled_best = ber_pooled_best.min(pooled_wall);
        ber_rebuild_best = ber_rebuild_best.min(rebuild_wall);
    }
    let batch_amortization = ber_rebuild_best.as_secs_f64() / ber_shared_best.as_secs_f64().max(1e-9);
    let ber_amortization_pooled = ber_rebuild_best.as_secs_f64() / ber_pooled_best.as_secs_f64().max(1e-9);
    println!(
        " shared detector  | wall {:>9} | {:>8.1} jobs/s\n pooled detector  | wall {:>9} | {:>8.1} jobs/s\n per-job rebuild  | wall {:>9} | {:>8.1} jobs/s",
        min_sec(ber_shared_best),
        f64::from(jobs) / ber_shared_best.as_secs_f64().max(1e-9),
        min_sec(ber_pooled_best),
        f64::from(jobs) / ber_pooled_best.as_secs_f64().max(1e-9),
        min_sec(ber_rebuild_best),
        f64::from(jobs) / ber_rebuild_best.as_secs_f64().max(1e-9),
    );
    println!(
        "\nartifact-sharing amortization (ISS BER batch): {batch_amortization:.2}x jobs/sec shared, \
         {ber_amortization_pooled:.2}x pooled per-job detectors (identical curves)"
    );
    let batch_json = format!(
        "    {{\n      \"kind\": \"batch_throughput\",\n      \"jobs\": {jobs}, \"nsc\": {batch_nsc}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {reps}, \"workers\": {workers},\n      \"wall_s_shared\": {:.6}, \"wall_s_pooled\": {:.6}, \"wall_s_rebuild\": {:.6},\n      \"jobs_per_sec_shared\": {jps_shared:.3}, \"jobs_per_sec_pooled\": {jps_pooled:.3}, \"jobs_per_sec_rebuild\": {jps_rebuild:.3},\n      \"ns_per_inst_batch\": {ns_per_inst_batch:.3},\n      \"per_job_setup_ns\": {per_job_setup_ns:.0}, \"per_job_setup_ns_pooled\": {per_job_setup_ns_pooled:.0},\n      \"symbol_amortization\": {symbol_amortization:.3},\n      \"symbol_amortization_pooled\": {symbol_amortization_pooled:.3},\n      \"ber_wall_s_shared\": {:.6}, \"ber_wall_s_pooled\": {:.6}, \"ber_wall_s_rebuild\": {:.6},\n      \"batch_amortization\": {batch_amortization:.3},\n      \"ber_amortization_pooled\": {ber_amortization_pooled:.3},\n      \"stats_identical\": true\n    }}",
        precision.paper_name(),
        shared_best.as_secs_f64(),
        pooled_best.as_secs_f64(),
        rebuild_best.as_secs_f64(),
        ber_shared_best.as_secs_f64(),
        ber_pooled_best.as_secs_f64(),
        ber_rebuild_best.as_secs_f64(),
    );

    // --- Serving daemon: sustained mixed open-loop traffic through the
    // persistent tier (artifact cache + warm pools + bounded admission
    // queue). Saturating mode keeps the queue full, so jobs/sec is the
    // daemon's sustained capacity and the percentiles include queueing.
    // One worker + a seeded request sequence make the cache-hit pattern
    // deterministic; the absolute rates are machine-dependent and gated
    // with the coarse cross-machine factor. ---
    let serve_json = if std::env::args().any(|a| a == "--serve") {
        use terasim::daemon::{open_loop, standard_mix, Daemon, DaemonConfig};
        let serve_requests = if smoke { 60 } else { 240 };
        let (serve_depth, serve_cache) = (16usize, 4usize);
        println!("\n=== Serving daemon — mixed open-loop traffic (saturating) ===");
        println!(
            "workload: {serve_requests} mixed requests (symbol/fast/cycle/BER), 1 worker, depth {serve_depth}, cache {serve_cache}\n"
        );
        let daemon = Daemon::start(DaemonConfig {
            workers: 1,
            queue_depth: serve_depth,
            cache_capacity: serve_cache,
            ..DaemonConfig::default()
        });
        let report = open_loop(&daemon, &standard_mix(), 0.0, serve_requests, 7);
        let stats = daemon.shutdown();
        assert_eq!(report.failed, 0, "serving daemon failed requests under synthetic load");
        assert!(report.cache_hits > 0, "mixed traffic must hit the artifact cache across requests");
        println!(
            " completed {:>4} | {:>8.1} jobs/s | p50 {:>7.3} ms | p99 {:>7.3} ms | cache hit rate {:.1}% | arenas recycled {}",
            report.completed,
            report.jobs_per_sec,
            report.p50_ns as f64 / 1e6,
            report.p99_ns as f64 / 1e6,
            report.hit_rate() * 100.0,
            stats.pools.recycled
        );
        format!(
            ",\n    {{\n      \"kind\": \"serve_daemon\",\n      \"serve_requests\": {serve_requests}, \"serve_workers\": 1, \"serve_depth\": {serve_depth}, \"serve_cache_capacity\": {serve_cache},\n      \"serve_jobs_per_sec\": {:.3}, \"serve_p50_ns\": {}, \"serve_p99_ns\": {},\n      \"serve_cache_hit_rate\": {:.4}, \"serve_cache_hits\": {}, \"serve_failed\": {},\n      \"serve_pool_fresh\": {}, \"serve_pool_recycled\": {}\n    }}",
            report.jobs_per_sec,
            report.p50_ns,
            report.p99_ns,
            report.hit_rate(),
            report.cache_hits,
            report.failed,
            stats.pools.fresh,
            stats.pools.recycled,
        )
    } else {
        String::new()
    };

    // --- Superinstruction fusion + SPMD convergence: the fused fast
    // engine vs the unfused per-instruction interpreter on the same
    // workloads, results asserted bit-identical, plus the instrumented
    // profile pass for the dynamic uop-pair histogram and coverage. ---
    let fusion_json = if std::env::args().any(|a| a == "--fusion-report") {
        println!("\n=== Fast engine — superinstruction fusion + SPMD convergence ===");
        println!(
            "workloads: parallel MMSE ({cores} cores) and OFDM symbol (NSC {nsc}), {n}x{n} {}, 1 host thread, best of {reps}\n",
            precision.paper_name()
        );
        let fconfig = ParallelConfig { cores, n, precision, seed: 50, unroll: 2 };
        let fused_scn = ParallelScenario::prepare_with_fusion(&fconfig, FusionMode::On)?;
        let unfused_scn = ParallelScenario::prepare_with_fusion(&fconfig, FusionMode::Off)?;
        let sconfig = BatchConfig { n, precision, nsc, seed: 1, unroll: 2 };
        let sym_fused = SymbolScenario::prepare_with_fusion(&sconfig, FusionMode::On)?;
        let sym_unfused = SymbolScenario::prepare_with_fusion(&sconfig, FusionMode::Off)?;
        let mut walls = [Duration::MAX; 4]; // [mmse on, mmse off, sym on, sym off]
        let mut mmse_insts = 0u64;
        let mut sym_insts = 0u64;
        for _ in 0..reps {
            let on = fused_scn.run_fast(1)?;
            let off = unfused_scn.run_fast(1)?;
            assert!(on.verified && off.verified, "fusion runs diverged from the native model");
            assert_eq!(
                (on.instructions, on.cluster_cycles),
                (off.instructions, off.cluster_cycles),
                "fused fast engine must be bit-identical to the unfused interpreter"
            );
            let son = sym_fused.run_symbol(sconfig.seed)?;
            let soff = sym_unfused.run_symbol(sconfig.seed)?;
            assert!(son.verified && soff.verified, "symbol fusion runs diverged from the native model");
            assert_eq!(
                (son.instructions, son.cycles),
                (soff.instructions, soff.cycles),
                "fused symbol run must be bit-identical to the unfused interpreter"
            );
            mmse_insts = on.instructions;
            sym_insts = son.instructions;
            for (slot, wall) in walls.iter_mut().zip([on.wall, off.wall, son.wall, soff.wall]) {
                *slot = (*slot).min(wall);
            }
        }
        let ns = |wall: Duration, insts: u64| wall.as_secs_f64() * 1e9 / (insts as f64).max(1.0);
        let fast_speedup_fused = walls[1].as_secs_f64() / walls[0].as_secs_f64().max(1e-9);
        let symbol_speedup_fused = walls[3].as_secs_f64() / walls[2].as_secs_f64().max(1e-9);
        let ns_per_inst_fused = ns(walls[0], mmse_insts);

        // Instrumented profile pass: unfused execution order with the
        // fused table's dispatch decisions replayed, so the outcome stays
        // bit-identical while every retired pair is counted.
        let (pout, mut profile) = fused_scn.run_fast_profiled(1, fconfig.seed)?;
        assert_eq!(pout.instructions, mmse_insts, "profiled run must retire the same instructions");
        let (sout, sprofile) = sym_fused.run_symbol_profiled(sconfig.seed)?;
        assert_eq!(sout.instructions, sym_insts, "profiled symbol run must retire the same instructions");
        let fused_pct = profile.fused_pct();
        let fused_pct_symbol = sprofile.fused_pct();
        profile.merge(&sprofile);

        for (label, wall, insts) in [
            ("mmse_fused", walls[0], mmse_insts),
            ("mmse_unfused", walls[1], mmse_insts),
            ("symbol_fused", walls[2], sym_insts),
            ("symbol_unfused", walls[3], sym_insts),
        ] {
            println!(
                " {label:<14} | wall {:>9} | {insts:>12} insts | {:>8.2} MIPS | {:>6.1} ns/inst",
                min_sec(wall),
                insts as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
                ns(wall, insts)
            );
        }
        println!(
            "\nfusion speedup: {fast_speedup_fused:.2}x MMSE ({cores} cores, SPMD), \
             {symbol_speedup_fused:.2}x symbol (1 core) — identical results"
        );
        println!(
            "fused coverage: {fused_pct:.1}% of retired instructions (MMSE), {fused_pct_symbol:.1}% (symbol)"
        );
        println!("top dynamic pairs (merged):");
        let mut pairs_json = String::new();
        for (i, (a, b, count)) in profile.top_pairs(8).into_iter().enumerate() {
            println!("  {a:?}+{b:?}: {count}");
            if i > 0 {
                pairs_json.push_str(",\n");
            }
            pairs_json.push_str(&format!("        {{\"pair\": \"{a:?}+{b:?}\", \"count\": {count}}}"));
        }
        format!(
            ",\n    {{\n      \"kind\": \"fusion\",\n      \"cores\": {cores}, \"nsc\": {nsc}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {reps},\n      \"runs\": [\n        {{\"engine\": \"mmse_fused\", \"wall_s\": {:.6}, \"instructions\": {mmse_insts}, \"ns_per_inst\": {:.3}}},\n        {{\"engine\": \"mmse_unfused\", \"wall_s\": {:.6}, \"instructions\": {mmse_insts}, \"ns_per_inst\": {:.3}}},\n        {{\"engine\": \"symbol_fused\", \"wall_s\": {:.6}, \"instructions\": {sym_insts}, \"ns_per_inst\": {:.3}}},\n        {{\"engine\": \"symbol_unfused\", \"wall_s\": {:.6}, \"instructions\": {sym_insts}, \"ns_per_inst\": {:.3}}}\n      ],\n      \"ns_per_inst_fused\": {ns_per_inst_fused:.3},\n      \"fast_speedup_fused\": {fast_speedup_fused:.3},\n      \"symbol_speedup_fused\": {symbol_speedup_fused:.3},\n      \"fused_pct\": {fused_pct:.3},\n      \"fused_pct_symbol\": {fused_pct_symbol:.3},\n      \"top_pairs\": [\n{pairs_json}\n      ],\n      \"stats_identical\": true\n    }}",
            precision.paper_name(),
            walls[0].as_secs_f64(),
            ns(walls[0], mmse_insts),
            walls[1].as_secs_f64(),
            ns(walls[1], mmse_insts),
            walls[2].as_secs_f64(),
            ns(walls[2], sym_insts),
            walls[3].as_secs_f64(),
            ns(walls[3], sym_insts),
        )
    } else {
        String::new()
    };

    let json = format!(
        "{{\n  \"bench\": \"cycle_engine\",\n  \"scale\": \"{}\",\n  \"workloads\": [\n    {{\n      \"kind\": \"parallel_mmse\",\n      \"cores\": {cores}, \"mimo\": {n}, \"precision\": \"{}\", \"reps\": {reps},\n      \"runs\": [\n    {},\n    {}\n      ],\n      \"speedup_event_vs_naive\": {speedup:.3},\n      \"ns_per_inst_event\": {:.3},\n      \"stats_identical\": true\n    }},\n    {{\n      \"kind\": \"barrier_skew\",\n      \"cores\": {cores}, \"straggler_spin\": {spin}, \"reps\": {reps},\n      \"runs\": [\n        {{\"engine\": \"event_driven\", \"wall_s\": {:.6}, \"simulated_cycles\": {skew_cycles}}},\n        {{\"engine\": \"naive_scan\", \"wall_s\": {:.6}, \"simulated_cycles\": {skew_cycles}}}\n      ],\n      \"speedup_event_vs_naive\": {skew_speedup:.3},\n      \"stats_identical\": true\n    }},\n{scaling_json},\n{batch_json}{serve_json}{fusion_json}{epoch_json}\n  ]\n}}\n",
        // `--smoke` wins the label: it overrides the workload parameters
        // even when `--full` is also passed.
        if smoke {
            "smoke"
        } else if scale == Scale::Full {
            "full"
        } else {
            "reduced"
        },
        precision.paper_name(),
        json_run(&event),
        json_run(&naive),
        event.ns_per_inst(),
        skew_event.as_secs_f64(),
        skew_naive.as_secs_f64(),
    );
    std::fs::write(&out_path, &json)?;
    println!("wrote {out_path}");
    Ok(())
}

/// Assembles the barrier-skew guest: hart 0 spins `spin` loop iterations
/// while every other hart parks in `wfi`, then wakes them all.
fn skew_image(spin: i32) -> terasim_riscv::Image {
    use terasim_riscv::{Assembler, Image, Reg, Segment};
    use terasim_terapool::Topology;

    let mut a = Assembler::new(Topology::L2_BASE);
    a.csrr(Reg::T0, terasim_riscv::csr::MHARTID);
    let waker = a.new_label();
    a.beqz(Reg::T0, waker);
    a.wfi();
    let done = a.new_label();
    a.j(done);
    a.bind(waker);
    a.li(Reg::T1, spin);
    let top = a.new_label();
    a.bind(top);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, top);
    a.li(Reg::T2, Topology::CTRL_WAKE_ALL as i32);
    a.li(Reg::T3, 1);
    a.sw(Reg::T3, 0, Reg::T2);
    a.bind(done);
    a.ecall();
    let mut image = Image::new(Topology::L2_BASE);
    image.push_segment(Segment::from_words(Topology::L2_BASE, &a.finish().expect("skew guest assembles")));
    image
}

/// Builds and times the barrier-skew guest (see [`skew_image`]).
/// Returns (event wall, naive wall, simulated cycles), best of `reps`,
/// after asserting both engines report identical stats.
fn measure_skew(cores: u32, spin: i32, reps: u32) -> (Duration, Duration, u64) {
    use terasim_terapool::{CycleSim, Topology};

    let topo = Topology::scaled(cores);
    let image = skew_image(spin);

    let mut best = (Duration::MAX, Duration::MAX, 0u64);
    let mut reference: Option<Vec<terasim_terapool::CycleStats>> = None;
    for _ in 0..reps {
        for naive in [false, true] {
            let mut sim = CycleSim::new(topo, &image).expect("skew guest translates");
            let start = std::time::Instant::now();
            let result =
                if naive { sim.run_naive(cores).expect("runs") } else { sim.run(cores).expect("runs") };
            let wall = start.elapsed();
            assert!(!result.deadlocked, "skew guest must finish");
            match &reference {
                Some(stats) => assert_eq!(*stats, result.per_core, "engines diverged on skew guest"),
                None => reference = Some(result.per_core.clone()),
            }
            best.2 = result.cycles;
            if naive {
                best.1 = best.1.min(wall);
            } else {
                best.0 = best.0.min(wall);
            }
        }
    }
    best
}

/// Times the sharded serial engine on the barrier-skew guest with
/// adaptive vs fixed epochs at `cores` (multi-domain, so the sole-active
/// grant actually applies). Returns (adaptive wall, fixed wall, adaptive
/// epoch telemetry, simulated cycles), best of `reps`, after asserting
/// bit-identical per-core stats across both cadences.
fn measure_skew_epochs(
    cores: u32,
    spin: i32,
    reps: u32,
) -> (Duration, Duration, terasim_terapool::EpochReport, u64) {
    use terasim_terapool::{CycleSim, EpochReport, SimArtifacts, Topology};

    let topo = Topology::scaled(cores);
    let image = skew_image(spin);

    let mut best = (Duration::MAX, Duration::MAX);
    let mut report = EpochReport::default();
    let mut cycles = 0u64;
    let mut reference: Option<Vec<terasim_terapool::CycleStats>> = None;
    for _ in 0..reps {
        for mode in [EpochMode::Adaptive, EpochMode::Fixed] {
            let rc = RunConfig { epochs: mode, ..RunConfig::default() };
            let arts = SimArtifacts::build_with(topo, &image, rc).expect("skew guest translates");
            let mut sim = CycleSim::from_artifacts(arts);
            let start = Instant::now();
            let result = sim.run(cores).expect("runs");
            let wall = start.elapsed();
            assert!(!result.deadlocked, "skew guest must finish");
            match &reference {
                Some(stats) => assert_eq!(*stats, result.per_core, "epoch cadences diverged on skew guest"),
                None => reference = Some(result.per_core.clone()),
            }
            cycles = result.cycles;
            if mode == EpochMode::Adaptive {
                if wall < best.0 {
                    best.0 = wall;
                    report = sim.epoch_report();
                }
            } else {
                best.1 = best.1.min(wall);
            }
        }
    }
    (best.0, best.1, report, cycles)
}
