//! Simulator-speed measurement (paper §V-A): single-thread emulation
//! speed in MIPS and the per-iteration runtime quoted in the abstract
//! ("9.5 s – 3 min per OFDM symbol, 3.57 MIPS peak").
//!
//! Run: `cargo run -p terasim-bench --release --bin mips [--full]`

use terasim::experiments::{self, BatchConfig};
use terasim_bench::{min_sec, Scale};
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Simulator speed — single-thread MIPS"));
    let nsc = scale.nsc();
    println!("one MC iteration = NSC {nsc} problems on one Snitch, one host thread\n");
    println!(" MIMO  | precision | instructions | wall      | MIPS");
    println!(" ------+-----------+--------------+-----------+-------");
    let mut best = 0.0f64;
    for &n in scale.mimo_sizes() {
        for precision in [Precision::Half16, Precision::CDotp16] {
            let out = experiments::mc_symbol_single(&BatchConfig { n, precision, nsc, seed: 1, unroll: 2 })?;
            best = best.max(out.mips);
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>12} | {:>9} | {:>5.2}",
                precision.paper_name(),
                out.instructions,
                min_sec(out.wall),
                out.mips
            );
        }
    }
    println!("\npeak single-thread speed: {best:.2} MIPS (paper: 3.57 MIPS on EPYC-7742 with LLVM SBT)");
    Ok(())
}
