//! Figure 8: breakdown of instructions and architectural stalls over the
//! cycle count, from the cycle-accurate backend.
//!
//! Paper: few I$ (`stall-ins`) and FPU (`stall-acc`) stalls; unrolling
//! keeps RAW stalls moderate; `stall-lsu` (interconnect contention) is
//! highest for the load-heavy 16bHalf; `stall-wfi` is barrier idling.
//!
//! Run: `cargo run -p terasim-bench --release --bin fig8 [--full]`

use terasim::experiments::{self, ParallelConfig};
use terasim_bench::Scale;
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Figure 8 — cycle breakdown (cycle-accurate backend)"));
    println!("cluster: {} cores\n", scale.cores());
    println!(" MIMO  | precision | instr%  | raw%   | lsu%   | ins%   | acc%   | wfi%   | total cycles");
    println!(" ------+-----------+---------+--------+--------+--------+--------+--------+-------------");
    let mut lsu_shares = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            let config = ParallelConfig { cores: scale.cores(), n, precision, seed: 80, unroll: 2 };
            let out = experiments::parallel_cycle(&config)?;
            assert!(out.verified);
            let b = out.breakdown;
            let total = b.total() as f64;
            let pct = |x: u64| 100.0 * x as f64 / total;
            if n == *scale.mimo_sizes().last().unwrap() {
                lsu_shares.push((precision, pct(b.stall_lsu)));
            }
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>6.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>12}",
                precision.paper_name(),
                pct(b.instructions),
                pct(b.stall_raw),
                pct(b.stall_lsu),
                pct(b.stall_ins),
                pct(b.stall_acc),
                pct(b.stall_wfi),
                out.cycles,
            );
        }
        println!();
    }
    if let Some(max) = lsu_shares.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("Largest LSU-stall share: {} ({:.1}%) — the paper attributes this to 16bHalf's doubled memory ops.", max.0, max.1);
    }
    Ok(())
}
