//! Figure 8: breakdown of instructions and architectural stalls over the
//! cycle count, from the cycle-accurate backend.
//!
//! Paper: few I$ (`stall-ins`) and FPU (`stall-acc`) stalls; unrolling
//! keeps RAW stalls moderate; `stall-lsu` (interconnect contention) is
//! highest for the load-heavy 16bHalf; `stall-wfi` is barrier idling.
//!
//! The sweep runs as a `BatchRunner` batch: one cycle-accurate job per
//! (MIMO, precision) configuration, each over its own shared artifact
//! set, widening into idle worker lanes through the sharded engine.
//!
//! Run: `cargo run -p terasim-bench --release --bin fig8 [--full]`

use terasim::experiments::{CycleEngine, ParallelConfig, ParallelScenario};
use terasim::serve::BatchRunner;
use terasim_bench::Scale;
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Figure 8 — cycle breakdown (cycle-accurate backend)"));
    println!("cluster: {} cores\n", scale.cores());
    println!(" MIMO  | precision | instr%  | raw%   | lsu%   | ins%   | acc%   | wfi%   | total cycles");
    println!(" ------+-----------+---------+--------+--------+--------+--------+--------+-------------");
    let mut configs = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            configs.push(ParallelConfig { cores: scale.cores(), n, precision, seed: 80, unroll: 2 });
        }
    }
    let rows = BatchRunner::new().run(configs, |ctx, config| -> Result<_, String> {
        let scenario = ParallelScenario::prepare(&config).map_err(|e| e.to_string())?;
        let out =
            scenario.run_cycle(CycleEngine::Parallel(ctx.claimable_threads())).map_err(|e| e.to_string())?;
        Ok((config, out))
    });
    let mut lsu_shares = Vec::new();
    let mut last_n = 0;
    for row in rows {
        let (config, out) = row?;
        if last_n != 0 && config.n != last_n {
            println!();
        }
        last_n = config.n;
        assert!(out.verified);
        let n = config.n;
        let b = out.breakdown;
        let total = b.total() as f64;
        let pct = |x: u64| 100.0 * x as f64 / total;
        if n == *scale.mimo_sizes().last().unwrap() {
            lsu_shares.push((config.precision, pct(b.stall_lsu)));
        }
        println!(
            " {n:>2}x{n:<2} | {:<9} | {:>6.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>12}",
            config.precision.paper_name(),
            pct(b.instructions),
            pct(b.stall_raw),
            pct(b.stall_lsu),
            pct(b.stall_ins),
            pct(b.stall_acc),
            pct(b.stall_wfi),
            out.cycles,
        );
    }
    println!();
    if let Some(max) = lsu_shares.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("Largest LSU-stall share: {} ({:.1}%) — the paper attributes this to 16bHalf's doubled memory ops.", max.0, max.1);
    }
    Ok(())
}
