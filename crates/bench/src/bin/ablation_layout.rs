//! Ablation D4 (DESIGN.md): operand placement in the shared L1.
//!
//! The paper's Figure 4 places vectors at consecutive interleaved
//! addresses so concurrent cores fetch from *different* banks. This
//! ablation compares that layout against an adversarial bank-aligned
//! placement where every core's operands start in the same banks —
//! quantifying how much the allocation strategy is worth.
//!
//! Run: `cargo run -p terasim-bench --release --bin ablation_layout [--full]`

use terasim_bench::Scale;
use terasim_kernels::{data, MmseKernel, Precision};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{CycleSim, Topology};

fn run(n: u32, precision: Precision, cores: u32, aligned: bool) -> (u64, u64) {
    let kernel = MmseKernel::new(n, precision).with_active_cores(cores).with_bank_aligned_inputs(aligned);
    let mut topo = Topology::scaled(cores);
    while kernel.layout(&topo).is_err() {
        topo.tile_spm_bytes *= 2;
    }
    let layout = kernel.layout(&topo).expect("fits");
    let image = kernel.build(&topo).expect("builds");
    let mut sim = CycleSim::new(topo, &image).expect("translates");
    let scenario = Mimo {
        n_tx: n as usize,
        n_rx: n as usize,
        modulation: Modulation::Qam16,
        channel: ChannelKind::Rayleigh,
    };
    let mut generator = TxGenerator::new(scenario, 12.0, 4);
    for p in 0..layout.problems {
        let t = generator.next_transmission();
        let h: Vec<(f64, f64)> = t.h.iter().map(|z| (*z).into()).collect();
        let y: Vec<(f64, f64)> = t.y.iter().map(|z| (*z).into()).collect();
        data::write_problem(sim.memory(), &layout, p, &h, &y, t.sigma);
    }
    let result = sim.run(cores).expect("runs");
    (result.cycles, result.aggregate().stall_lsu)
}

fn main() {
    let scale = Scale::from_args();
    let cores = scale.cores();
    println!("{}", scale.banner("Ablation D4 — operand placement (interleaved vs bank-aligned)"));
    println!("cluster: {cores} cores; cycle-accurate backend\n");
    println!(" MIMO  | precision | layout       | cycles     | lsu stalls | penalty");
    println!(" ------+-----------+--------------+------------+------------+--------");
    let mut configs = Vec::new();
    for &n in &scale.mimo_sizes()[..2] {
        for precision in [Precision::Half16, Precision::CDotp16] {
            configs.push((n, precision));
        }
    }
    // Both layouts of one configuration per batch job (independent
    // cluster simulations; `BatchRunner` returns rows in input order).
    let rows = terasim::serve::BatchRunner::new().run(configs, |_ctx, (n, precision)| {
        (n, precision, run(n, precision, cores, false), run(n, precision, cores, true))
    });
    for (n, precision, (base_cycles, base_lsu), (bad_cycles, bad_lsu)) in rows {
        println!(
            " {n:>2}x{n:<2} | {:<9} | interleaved  | {:>10} | {:>10} |",
            precision.paper_name(),
            base_cycles,
            base_lsu
        );
        println!(
            " {n:>2}x{n:<2} | {:<9} | bank-aligned | {:>10} | {:>10} | {:>5.2}x",
            precision.paper_name(),
            bad_cycles,
            bad_lsu,
            bad_cycles as f64 / base_cycles as f64
        );
    }
    println!("\nReading: the paper's consecutive-address placement (Figure 4) avoids the serialization");
    println!("that bank-aligned operands provoke; the penalty is the value of the allocation strategy.");
}
