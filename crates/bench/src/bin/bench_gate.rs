//! CI performance-regression gate over the cycle-engine benchmark report.
//!
//! Compares a candidate report (normally the `mips --smoke` output,
//! `BENCH_smoke.json`) against the committed smoke baseline
//! (`BENCH_baseline.json`) and **fails** (non-zero exit) when:
//!
//! * the MMSE event-vs-naive speedup falls below the baseline by more
//!   than the relative tolerance (`--tol-speedup`, default 0.35 — CI
//!   runners are noisy, the gate is for real regressions, not jitter);
//! * the barrier-skew speedup falls below the baseline by more than the
//!   same tolerance;
//! * any domain-sharded scaling or batch-serving entry present in the
//!   baseline (`speedup_threads_2`, `speedup_threads_4`,
//!   `speedup_event_vs_naive_at_scale`, `batch_amortization` — the
//!   jobs/sec win of shared artifacts over per-job rebuild —
//!   `symbol_amortization_pooled` — the small-symbol-job jobs/sec win of
//!   pool-recycled cluster memory over per-job rebuild) is missing from
//!   the candidate or falls below the baseline beyond the same tolerance
//!   band;
//! * the pooled small-job throughput (`jobs_per_sec_pooled`) is missing
//!   from the candidate while the baseline has it, or falls below the
//!   baseline by more than the factor `--tol-jobs` (default 3.0 —
//!   absolute jobs/sec varies across machines far more than the
//!   amortization ratios, so this is a did-the-pool-break check, not a
//!   jitter band);
//! * the 4-thread sharded speedup falls below the absolute floor
//!   (`--floor-threads4`, default 2.0) **when the candidate runner has
//!   at least 4 host CPUs** (`host_cpus` in the report) — a 1-core
//!   runner cannot exhibit wall-clock scaling, so only the
//!   baseline-relative band applies there;
//! * any serving-daemon entry present in the baseline is missing from
//!   the candidate, the sustained serve throughput
//!   (`serve_jobs_per_sec`) falls below the baseline by more than the
//!   `--tol-jobs` factor, the p99 serve latency (`serve_p99_ns`,
//!   queueing included) exceeds the baseline by more than the same
//!   factor, or the cross-request artifact-cache hit rate
//!   (`serve_cache_hit_rate`) is zero or falls below the
//!   baseline-relative band — a zero hit rate means the cache stopped
//!   carrying scenarios across requests, the serving tier's whole point;
//! * the event engine's per-instruction floor (`ns_per_inst`) exceeds
//!   the baseline by more than the factor `--tol-ns` (default 2.5 —
//!   baseline and CI run on different hardware);
//! * any adaptive-epoch entry (`avg_epoch_len`, `extended_epoch_pct`,
//!   `ns_per_inst_event_adaptive`, `speedup_threads_4_adaptive`,
//!   `speedup_adaptive_vs_fixed_skew` — written by the `mips
//!   --epoch-report` leg) is **missing from the candidate** — the leg
//!   silently disappearing fails even against a pre-adaptive baseline —
//!   or the extended-epoch share on the barrier-skew guest is zero (the
//!   quiescence predicate stopped firing: a correctness-adjacent
//!   regression, zero tolerance), or the adaptive-vs-fixed skew speedup
//!   falls below the absolute floor (`--floor-skew-adaptive`, default
//!   1.1 — the acceptance bar for the work the adaptive cadence
//!   deletes), or any of them falls outside its baseline-relative band
//!   (`--tol-speedup` for the ratios and shares, `--tol-ns` for the
//!   adaptive per-instruction floor);
//! * any superinstruction-fusion entry (`ns_per_inst_fused`,
//!   `fast_speedup_fused`, `fused_pct` — written by the `mips
//!   --fusion-report` leg) is **missing from the candidate** — the
//!   fusion leg silently disappearing fails even against a pre-fusion
//!   baseline — or the fused per-instruction floor exceeds the baseline
//!   by more than `--tol-ns`, or the fused-vs-unfused wall-clock ratio
//!   falls below the baseline-relative `--tol-speedup` band, or the
//!   fused coverage fraction is zero / falls below the same band (a
//!   zero `fused_pct` means lowering stopped forming pairs entirely);
//! * any `stats_identical` flag in the candidate is not `true` (the
//!   engines diverged — that is a correctness bug, zero tolerance).
//!
//! Usage:
//! `bench_gate [--baseline BENCH_baseline.json] [--candidate BENCH_smoke.json]
//!             [--tol-speedup 0.35] [--tol-ns 2.5] [--tol-jobs 3.0]
//!             [--floor-threads4 2.0] [--floor-skew-adaptive 1.1]`
//!
//! The parser is a deliberately small scanner over the fixed report
//! format written by the `mips` binary (this workspace has no JSON
//! dependency); it extracts every numeric value following a quoted key.

use std::process::ExitCode;

use terasim_bench::{arg_f64, arg_str};

/// Every number appearing after `"key":` in `json`, in document order.
fn numbers_after(json: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        let tail = rest[i + pat.len()..].trim_start();
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(tail.len());
        if let Ok(v) = tail[..end].parse::<f64>() {
            out.push(v);
        }
        rest = &rest[i + pat.len()..];
    }
    out
}

/// Every boolean appearing after `"key":` in `json`, in document order.
fn bools_after(json: &str, key: &str) -> Vec<bool> {
    let pat = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(i) = rest.find(&pat) {
        let tail = rest[i + pat.len()..].trim_start();
        if tail.starts_with("true") {
            out.push(true);
        } else if tail.starts_with("false") {
            out.push(false);
        }
        rest = &rest[i + pat.len()..];
    }
    out
}

struct Report {
    /// `[mmse, skew]` in document order.
    speedups: Vec<f64>,
    /// Event-engine per-instruction floor of the MMSE workload.
    ns_per_inst: f64,
    stats_identical: Vec<bool>,
    /// Domain-sharded scaling entries (absent in pre-sharding reports).
    threads2: Option<f64>,
    threads4: Option<f64>,
    at_scale: Option<f64>,
    /// Batch-serving amortization (jobs/sec, shared artifacts vs per-job
    /// rebuild; absent in pre-serve-layer reports).
    batch_amortization: Option<f64>,
    /// Small-symbol-job amortization with pool-recycled cluster memory
    /// (absent in pre-pooling reports).
    symbol_amortization_pooled: Option<f64>,
    /// Absolute pooled small-job throughput (jobs/sec; absent in
    /// pre-pooling reports).
    jobs_per_sec_pooled: Option<f64>,
    /// Host CPUs of the reporting machine (absent in older reports).
    host_cpus: Option<f64>,
    /// Serving-daemon sustained throughput (jobs/sec; absent in
    /// pre-daemon reports or runs without `--serve`).
    serve_jobs_per_sec: Option<f64>,
    /// Serving-daemon p99 latency, queueing included (nanoseconds).
    serve_p99_ns: Option<f64>,
    /// Serving-daemon cross-request artifact-cache hit rate (0..1).
    serve_cache_hit_rate: Option<f64>,
    /// Fused fast-engine per-instruction floor (`--fusion-report` leg;
    /// absent in pre-fusion reports).
    ns_per_inst_fused: Option<f64>,
    /// Fused-vs-unfused fast-engine wall-clock ratio on the MMSE
    /// workload.
    fast_speedup_fused: Option<f64>,
    /// Dynamic fraction of retired instructions dispatched inside a
    /// superinstruction (percent).
    fused_pct: Option<f64>,
    /// Mean simulated cycles per scheduling window of the adaptive
    /// sharded engine on the barrier-skew guest (`--epoch-report` leg;
    /// absent in pre-adaptive reports).
    avg_epoch_len: Option<f64>,
    /// Percentage of windows granted longer than one base epoch on the
    /// barrier-skew guest.
    extended_epoch_pct: Option<f64>,
    /// Adaptive-cadence per-instruction floor of the 1024-core MMSE
    /// (full occupancy — bounds the decide-overhead regression).
    ns_per_inst_event_adaptive: Option<f64>,
    /// 4-thread sharded speedup with the adaptive cadence.
    speedup_threads_4_adaptive: Option<f64>,
    /// Adaptive-vs-fixed wall-clock ratio on the barrier-skew guest.
    speedup_adaptive_vs_fixed_skew: Option<f64>,
}

fn parse(path: &str) -> Result<Report, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let speedups = numbers_after(&json, "speedup_event_vs_naive");
    if speedups.len() < 2 {
        return Err(format!("{path}: expected 2 speedup_event_vs_naive entries, found {}", speedups.len()));
    }
    let threads2 = numbers_after(&json, "speedup_threads_2").first().copied();
    let threads4 = numbers_after(&json, "speedup_threads_4").first().copied();
    let at_scale = numbers_after(&json, "speedup_event_vs_naive_at_scale").first().copied();
    let batch_amortization = numbers_after(&json, "batch_amortization").first().copied();
    let symbol_amortization_pooled = numbers_after(&json, "symbol_amortization_pooled").first().copied();
    let jobs_per_sec_pooled = numbers_after(&json, "jobs_per_sec_pooled").first().copied();
    let host_cpus = numbers_after(&json, "host_cpus").first().copied();
    let ns = numbers_after(&json, "ns_per_inst_event");
    let ns_per_inst = match ns.first() {
        Some(&v) => v,
        // Reports written before the floor was recorded (the PR 1 format)
        // fall back to wall_s / instructions of the first (event) run.
        None => {
            let walls = numbers_after(&json, "wall_s");
            let insts = numbers_after(&json, "instructions");
            match (walls.first(), insts.first()) {
                (Some(&w), Some(&i)) if i > 0.0 => w * 1e9 / i,
                _ => return Err(format!("{path}: no ns_per_inst_event and no wall_s/instructions")),
            }
        }
    };
    Ok(Report {
        speedups,
        ns_per_inst,
        stats_identical: bools_after(&json, "stats_identical"),
        threads2,
        threads4,
        at_scale,
        batch_amortization,
        symbol_amortization_pooled,
        jobs_per_sec_pooled,
        host_cpus,
        serve_jobs_per_sec: numbers_after(&json, "serve_jobs_per_sec").first().copied(),
        serve_p99_ns: numbers_after(&json, "serve_p99_ns").first().copied(),
        serve_cache_hit_rate: numbers_after(&json, "serve_cache_hit_rate").first().copied(),
        ns_per_inst_fused: numbers_after(&json, "ns_per_inst_fused").first().copied(),
        fast_speedup_fused: numbers_after(&json, "fast_speedup_fused").first().copied(),
        fused_pct: numbers_after(&json, "fused_pct").first().copied(),
        avg_epoch_len: numbers_after(&json, "avg_epoch_len").first().copied(),
        extended_epoch_pct: numbers_after(&json, "extended_epoch_pct").first().copied(),
        ns_per_inst_event_adaptive: numbers_after(&json, "ns_per_inst_event_adaptive").first().copied(),
        speedup_threads_4_adaptive: numbers_after(&json, "speedup_threads_4_adaptive").first().copied(),
        speedup_adaptive_vs_fixed_skew: numbers_after(&json, "speedup_adaptive_vs_fixed_skew")
            .first()
            .copied(),
    })
}

fn main() -> ExitCode {
    let baseline_path = arg_str("--baseline", "BENCH_baseline.json");
    let candidate_path = arg_str("--candidate", "BENCH_smoke.json");
    let tol_speedup = arg_f64("--tol-speedup", 0.35);
    let tol_ns = arg_f64("--tol-ns", 2.5);
    let tol_jobs = arg_f64("--tol-jobs", 3.0);
    let floor_threads4 = arg_f64("--floor-threads4", 2.0);
    let floor_skew_adaptive = arg_f64("--floor-skew-adaptive", 1.1);

    let (baseline, candidate) = match (parse(&baseline_path), parse(&candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench-gate: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let mut failures = Vec::new();

    if candidate.stats_identical.iter().any(|&ok| !ok) {
        failures.push("candidate reports stats_identical=false: the engines diverged".to_string());
    }

    for (idx, label) in [(0, "MMSE full-occupancy"), (1, "barrier skew")] {
        let base = baseline.speedups[idx];
        let cand = candidate.speedups[idx];
        let floor = base * (1.0 - tol_speedup);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "{label:<22} speedup: baseline {base:>7.3}x  candidate {cand:>7.3}x  floor {floor:>7.3}x  [{status}]"
        );
        if cand < floor {
            failures.push(format!(
                "{label} event-vs-naive speedup regressed: {cand:.3}x < {floor:.3}x \
                 (baseline {base:.3}x, tolerance {tol_speedup})"
            ));
        }
    }

    // Domain-sharded scaling and batch-serving entries: tolerance-banded
    // against the baseline, like the engine speedups above. A baseline
    // without them (older format) waives the check; a candidate missing
    // one the baseline has means the sweep silently disappeared — that
    // fails.
    for (label, base, cand) in [
        ("threads x2 sharding", baseline.threads2, candidate.threads2),
        ("threads x4 sharding", baseline.threads4, candidate.threads4),
        ("event-vs-naive @1024", baseline.at_scale, candidate.at_scale),
        ("batch amortization", baseline.batch_amortization, candidate.batch_amortization),
        ("pooled symbol amort.", baseline.symbol_amortization_pooled, candidate.symbol_amortization_pooled),
    ] {
        let Some(base) = base else { continue };
        let Some(cand) = cand else {
            failures.push(format!("{label}: baseline has the entry but the candidate is missing it"));
            continue;
        };
        let floor = base * (1.0 - tol_speedup);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "{label:<22} speedup: baseline {base:>7.3}x  candidate {cand:>7.3}x  floor {floor:>7.3}x  [{status}]"
        );
        if cand < floor {
            failures.push(format!(
                "{label} speedup regressed: {cand:.3}x < {floor:.3}x \
                 (baseline {base:.3}x, tolerance {tol_speedup})"
            ));
        }
    }

    // Pooled small-job throughput: an absolute jobs/sec figure, so the
    // band is a coarse cross-machine factor (`--tol-jobs`), not the
    // jitter tolerance — it catches the pool silently degrading to
    // per-job allocation (which costs ~1 ms/job, an order of magnitude),
    // not scheduler noise. Missing entry = the pooled leg disappeared —
    // that fails like the other batch entries.
    if let Some(base) = baseline.jobs_per_sec_pooled {
        match candidate.jobs_per_sec_pooled {
            None => {
                failures
                    .push("pooled jobs/sec: baseline has the entry but the candidate is missing it".into());
            }
            Some(cand) => {
                let floor = base / tol_jobs;
                let status = if cand >= floor { "ok" } else { "REGRESSION" };
                println!(
                    "pooled symbol jobs/sec: baseline {base:>7.1}   candidate {cand:>7.1}   floor {floor:>7.1}   [{status}]"
                );
                if cand < floor {
                    failures.push(format!(
                        "pooled small-job throughput regressed: {cand:.1} jobs/s < {floor:.1} \
                         (baseline {base:.1}, factor {tol_jobs})"
                    ));
                }
            }
        }
    }

    // Serving-daemon entries. Throughput and p99 latency are absolute
    // figures, banded with the coarse cross-machine factor (`--tol-jobs`)
    // like the pooled jobs/sec above; the cache hit rate is a ratio of a
    // seeded deterministic request sequence, so it gets the tight
    // baseline-relative band plus a hard nonzero floor — zero hits means
    // scenarios stopped surviving across requests.
    if let Some(base) = baseline.serve_jobs_per_sec {
        match candidate.serve_jobs_per_sec {
            None => {
                failures
                    .push("serve jobs/sec: baseline has the entry but the candidate is missing it".into());
            }
            Some(cand) => {
                let floor = base / tol_jobs;
                let status = if cand >= floor { "ok" } else { "REGRESSION" };
                println!(
                    "serve sustained jobs/s: baseline {base:>7.1}   candidate {cand:>7.1}   floor {floor:>7.1}   [{status}]"
                );
                if cand < floor {
                    failures.push(format!(
                        "serving-daemon throughput regressed: {cand:.1} jobs/s < {floor:.1} \
                         (baseline {base:.1}, factor {tol_jobs})"
                    ));
                }
            }
        }
    }
    if let Some(base) = baseline.serve_p99_ns {
        match candidate.serve_p99_ns {
            None => {
                failures
                    .push("serve p99 latency: baseline has the entry but the candidate is missing it".into());
            }
            Some(cand) => {
                let ceiling = base * tol_jobs;
                let status = if cand <= ceiling { "ok" } else { "REGRESSION" };
                println!(
                    "serve p99 latency (ms): baseline {:>7.3}   candidate {:>7.3}   ceiling {:>7.3}   [{status}]",
                    base / 1e6,
                    cand / 1e6,
                    ceiling / 1e6
                );
                if cand > ceiling {
                    failures.push(format!(
                        "serving-daemon p99 latency regressed: {:.3} ms > {:.3} ms \
                         (baseline {:.3} ms, factor {tol_jobs})",
                        cand / 1e6,
                        ceiling / 1e6,
                        base / 1e6
                    ));
                }
            }
        }
    }
    if let Some(base) = baseline.serve_cache_hit_rate {
        match candidate.serve_cache_hit_rate {
            None => {
                failures.push(
                    "serve cache hit rate: baseline has the entry but the candidate is missing it".into(),
                );
            }
            Some(cand) => {
                let floor = base * (1.0 - tol_speedup);
                let ok = cand > 0.0 && cand >= floor;
                let status = if ok { "ok" } else { "REGRESSION" };
                println!(
                    "serve cache hit rate:   baseline {base:>7.3}   candidate {cand:>7.3}   floor {floor:>7.3}   [{status}]"
                );
                if cand <= 0.0 {
                    failures.push(
                        "serving-daemon cache hit rate is zero: no scenario survived across requests".into(),
                    );
                } else if cand < floor {
                    failures.push(format!(
                        "serving-daemon cache hit rate regressed: {cand:.3} < {floor:.3} \
                         (baseline {base:.3}, tolerance {tol_speedup})"
                    ));
                }
            }
        }
    }

    // Absolute floor for the 4-thread sharded run — only meaningful when
    // the runner can actually execute 4 domains concurrently.
    if let Some(cand) = candidate.threads4 {
        let cpus = candidate.host_cpus.unwrap_or(1.0);
        if cpus >= 4.0 {
            let status = if cand >= floor_threads4 { "ok" } else { "REGRESSION" };
            println!(
                "threads x4 hard floor  speedup: candidate {cand:>7.3}x  floor {floor_threads4:>7.3}x  [{status}]"
            );
            if cand < floor_threads4 {
                failures.push(format!(
                    "4-domain sharded speedup below the hard floor: {cand:.3}x < {floor_threads4:.3}x \
                     on a {cpus:.0}-CPU runner"
                ));
            }
        } else {
            println!(
                "threads x4 hard floor  waived: candidate runner has {cpus:.0} host CPU(s), \
                 wall-clock scaling needs >= 4"
            );
        }
    }

    let ns_ceiling = baseline.ns_per_inst * tol_ns;
    let ns_status = if candidate.ns_per_inst <= ns_ceiling { "ok" } else { "REGRESSION" };
    println!(
        "per-instruction floor   ns/inst: baseline {:>7.1}  candidate {:>7.1}  ceiling {:>7.1}  [{ns_status}]",
        baseline.ns_per_inst, candidate.ns_per_inst, ns_ceiling
    );
    if candidate.ns_per_inst > ns_ceiling {
        failures.push(format!(
            "per-instruction floor regressed: {:.1} ns > {:.1} ns (baseline {:.1} ns, factor {tol_ns})",
            candidate.ns_per_inst, ns_ceiling, baseline.ns_per_inst
        ));
    }

    // Superinstruction-fusion entries: part of the smoke contract, so a
    // candidate missing any of them fails outright — even against a
    // pre-fusion baseline, where only the bands are waived.
    for key in ["ns_per_inst_fused", "fast_speedup_fused", "fused_pct"] {
        let present = match key {
            "ns_per_inst_fused" => candidate.ns_per_inst_fused.is_some(),
            "fast_speedup_fused" => candidate.fast_speedup_fused.is_some(),
            _ => candidate.fused_pct.is_some(),
        };
        if !present {
            failures.push(format!("{key}: missing from the candidate (fusion-report leg disappeared)"));
        }
    }
    if let (Some(base), Some(cand)) = (baseline.ns_per_inst_fused, candidate.ns_per_inst_fused) {
        let ceiling = base * tol_ns;
        let status = if cand <= ceiling { "ok" } else { "REGRESSION" };
        println!(
            "fused per-inst floor    ns/inst: baseline {base:>7.1}  candidate {cand:>7.1}  ceiling {ceiling:>7.1}  [{status}]"
        );
        if cand > ceiling {
            failures.push(format!(
                "fused per-instruction floor regressed: {cand:.1} ns > {ceiling:.1} ns \
                 (baseline {base:.1} ns, factor {tol_ns})"
            ));
        }
    }
    if let (Some(base), Some(cand)) = (baseline.fast_speedup_fused, candidate.fast_speedup_fused) {
        let floor = base * (1.0 - tol_speedup);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "fused-vs-unfused fast  speedup: baseline {base:>7.3}x  candidate {cand:>7.3}x  floor {floor:>7.3}x  [{status}]"
        );
        if cand < floor {
            failures.push(format!(
                "fused fast-engine speedup regressed: {cand:.3}x < {floor:.3}x \
                 (baseline {base:.3}x, tolerance {tol_speedup})"
            ));
        }
    }
    if let (Some(base), Some(cand)) = (baseline.fused_pct, candidate.fused_pct) {
        let floor = base * (1.0 - tol_speedup);
        let ok = cand > 0.0 && cand >= floor;
        let status = if ok { "ok" } else { "REGRESSION" };
        println!(
            "fused coverage          percent: baseline {base:>7.1}  candidate {cand:>7.1}  floor {floor:>7.1}  [{status}]"
        );
        if cand <= 0.0 {
            failures.push("fused coverage is zero: lowering stopped forming superinstructions".into());
        } else if cand < floor {
            failures.push(format!(
                "fused coverage regressed: {cand:.1}% < {floor:.1}% \
                 (baseline {base:.1}%, tolerance {tol_speedup})"
            ));
        }
    }

    // Adaptive-epoch entries: part of the smoke contract like the fusion
    // keys, so a candidate missing any of them fails outright — even
    // against a pre-adaptive baseline, where only the bands are waived.
    for (key, present) in [
        ("avg_epoch_len", candidate.avg_epoch_len.is_some()),
        ("extended_epoch_pct", candidate.extended_epoch_pct.is_some()),
        ("ns_per_inst_event_adaptive", candidate.ns_per_inst_event_adaptive.is_some()),
        ("speedup_threads_4_adaptive", candidate.speedup_threads_4_adaptive.is_some()),
        ("speedup_adaptive_vs_fixed_skew", candidate.speedup_adaptive_vs_fixed_skew.is_some()),
    ] {
        if !present {
            failures.push(format!("{key}: missing from the candidate (epoch-report leg disappeared)"));
        }
    }
    // The extended share on the barrier-skew guest is a hard nonzero
    // floor: zero means the quiescence predicate stopped granting
    // extensions entirely — the adaptive cadence silently degraded to
    // the fixed one.
    if let Some(cand) = candidate.extended_epoch_pct {
        let floor = baseline.extended_epoch_pct.map_or(0.0, |b| b * (1.0 - tol_speedup));
        let ok = cand > 0.0 && cand >= floor;
        let status = if ok { "ok" } else { "REGRESSION" };
        println!(
            "extended epochs (skew)  percent: baseline {:>7.1}  candidate {cand:>7.1}  floor {floor:>7.1}  [{status}]",
            baseline.extended_epoch_pct.unwrap_or(0.0)
        );
        if cand <= 0.0 {
            failures.push(
                "extended epoch share is zero on the barrier-skew guest: no grants were extended".into(),
            );
        } else if cand < floor {
            failures.push(format!(
                "extended epoch share regressed: {cand:.1}% < {floor:.1}% (tolerance {tol_speedup})"
            ));
        }
    }
    if let (Some(base), Some(cand)) = (baseline.avg_epoch_len, candidate.avg_epoch_len) {
        let floor = base * (1.0 - tol_speedup);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "avg epoch length (skew)  cycles: baseline {base:>7.1}  candidate {cand:>7.1}  floor {floor:>7.1}  [{status}]"
        );
        if cand < floor {
            failures.push(format!(
                "average adaptive epoch length regressed: {cand:.1} < {floor:.1} \
                 (baseline {base:.1}, tolerance {tol_speedup})"
            ));
        }
    }
    if let (Some(base), Some(cand)) =
        (baseline.ns_per_inst_event_adaptive, candidate.ns_per_inst_event_adaptive)
    {
        let ceiling = base * tol_ns;
        let status = if cand <= ceiling { "ok" } else { "REGRESSION" };
        println!(
            "adaptive per-inst floor ns/inst: baseline {base:>7.1}  candidate {cand:>7.1}  ceiling {ceiling:>7.1}  [{status}]"
        );
        if cand > ceiling {
            failures.push(format!(
                "adaptive per-instruction floor regressed: {cand:.1} ns > {ceiling:.1} ns \
                 (baseline {base:.1} ns, factor {tol_ns})"
            ));
        }
    }
    if let (Some(base), Some(cand)) =
        (baseline.speedup_threads_4_adaptive, candidate.speedup_threads_4_adaptive)
    {
        let floor = base * (1.0 - tol_speedup);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "threads x4 adaptive    speedup: baseline {base:>7.3}x  candidate {cand:>7.3}x  floor {floor:>7.3}x  [{status}]"
        );
        if cand < floor {
            failures.push(format!(
                "adaptive 4-thread sharded speedup regressed: {cand:.3}x < {floor:.3}x \
                 (baseline {base:.3}x, tolerance {tol_speedup})"
            ));
        }
    }
    // Adaptive-vs-fixed on barrier skew carries both the baseline band
    // and the absolute acceptance floor: the whole point of the adaptive
    // cadence is to delete barrier/replay work where domains are
    // quiescent, so it must stay measurably faster than fixed there.
    if let Some(cand) = candidate.speedup_adaptive_vs_fixed_skew {
        let band = baseline.speedup_adaptive_vs_fixed_skew.map_or(0.0, |b| b * (1.0 - tol_speedup));
        let floor = band.max(floor_skew_adaptive);
        let status = if cand >= floor { "ok" } else { "REGRESSION" };
        println!(
            "adaptive-vs-fixed skew speedup: baseline {:>7.3}x  candidate {cand:>7.3}x  floor {floor:>7.3}x  [{status}]",
            baseline.speedup_adaptive_vs_fixed_skew.unwrap_or(0.0)
        );
        if cand < floor {
            failures.push(format!(
                "adaptive-vs-fixed barrier-skew speedup below the floor: {cand:.3}x < {floor:.3}x \
                 (hard floor {floor_skew_adaptive}, tolerance {tol_speedup})"
            ));
        }
    }

    if failures.is_empty() {
        println!("bench-gate: PASS ({candidate_path} vs {baseline_path})");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench-gate: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_extracts_in_order() {
        let json = r#"{"a": 1.5, "nested": {"a": -2e3}, "flag": true, "flag": false}"#;
        assert_eq!(numbers_after(json, "a"), vec![1.5, -2e3]);
        assert_eq!(bools_after(json, "flag"), vec![true, false]);
        assert!(numbers_after(json, "missing").is_empty());
    }
}
