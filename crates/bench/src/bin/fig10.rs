//! Figure 10: BER vs SNR over the flat-fading Rayleigh channel, 16QAM and
//! 64QAM, for 4x4 and 32x32 MIMO.
//!
//! Paper: under fading, only 16bwDotp and 16bCDotp (the variants with
//! 32-bit internal precision) follow the 64bDouble golden model — the
//! co-simulation's headline design-space insight.
//!
//! Each curve is served as a batch: `experiments::ber_curve` fans the SNR
//! points out as `BatchRunner` jobs (per-point seeds travel with the
//! jobs, so the curve is identical at every worker count).
//!
//! Run: `cargo run -p terasim-bench --release --bin fig10 [--full]`

use terasim::experiments::ber_curve;
use terasim::DetectorKind;
use terasim_bench::Scale;
use terasim_kernels::Precision;
use terasim_phy::{ChannelKind, Mimo, Modulation};

fn main() {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Figure 10 — BER vs SNR, Rayleigh channel"));
    let sizes: &[usize] = if scale == Scale::Full { &[4, 32] } else { &[4, 8] };
    let snrs = [0.0, 4.0, 8.0, 12.0, 16.0];
    let detectors = [
        DetectorKind::Reference64,
        DetectorKind::Native(Precision::WDotp16),
        DetectorKind::Native(Precision::CDotp16),
        // Included to show *why* the paper keeps only the 32-bit-internal
        // variants in this figure:
        DetectorKind::Native(Precision::Half16),
    ];

    for modulation in [Modulation::Qam16, Modulation::Qam64] {
        for &n in sizes {
            let scenario = Mimo { n_tx: n, n_rx: n, modulation, channel: ChannelKind::Rayleigh };
            println!("\n--- {n}x{n} {} Rayleigh ---", modulation.name());
            print!("{:<14}", "detector");
            for snr in snrs {
                print!(" | {snr:>6.1} dB");
            }
            println!();
            for kind in detectors {
                print!("{:<14}", kind.label());
                for p in ber_curve(scenario, &snrs, kind, scale.target_errors(), scale.max_iterations(), 100)
                {
                    print!(" | {:>8.2e}", p.ber());
                }
                println!();
            }
        }
    }
    println!("\nExpected shape (paper): 16bwDotp/16bCDotp track 64bDouble under fading.");
}
