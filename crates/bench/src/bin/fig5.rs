//! Figure 5: CPU-time of multi-thread fast simulation of the parallel
//! MMSE, and speedup against single-thread cycle-accurate simulation.
//!
//! Paper setup: 1024 TeraPool cores, one MMSE problem per core, four
//! precisions × four MIMO sizes; Banshee multi-thread CPU-time vs
//! QuestaSim single-thread CPU-time (up to 63× CPU-time speedup). Here
//! the cycle-accurate backend plays QuestaSim's role.
//!
//! Run: `cargo run -p terasim-bench --release --bin fig5 [--full]`

use terasim::experiments::{self, ParallelConfig};
use terasim_bench::{host_threads, min_sec, Scale};
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let threads = host_threads();
    println!("{}", scale.banner("Figure 5 — parallel MMSE: fast-sim CPU-time and speedup vs cycle-accurate"));
    println!("cluster: {} cores, {} host threads; CPU-time(fast) ~ wall x threads\n", scale.cores(), threads);
    println!(" MIMO  | precision | fast wall | fast CPU-time | cycle wall | speedup (CPU) | speedup (wall)");
    println!(" ------+-----------+-----------+---------------+------------+---------------+---------------");
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            let config = ParallelConfig { cores: scale.cores(), n, precision, seed: 50, unroll: 2 };
            let fast = experiments::parallel_fast(&config, threads)?;
            let cycle = experiments::parallel_cycle(&config)?;
            assert!(fast.verified && cycle.verified, "backends diverged");
            let fast_cpu = fast.wall.as_secs_f64() * threads as f64;
            let speedup_cpu = cycle.wall.as_secs_f64() / fast_cpu;
            let speedup_wall = cycle.wall.as_secs_f64() / fast.wall.as_secs_f64();
            println!(
                " {n:>2}x{n:<2} | {:<9} | {:>9} | {:>13} | {:>10} | {:>12.1}x | {:>12.1}x",
                precision.paper_name(),
                min_sec(fast.wall),
                format!("{:.2}s", fast_cpu),
                min_sec(cycle.wall),
                speedup_cpu,
                speedup_wall,
            );
        }
        println!();
    }
    println!("Expected shape (paper): speedup grows with MIMO size (3x -> 63x CPU-time at 1024 cores).");
    Ok(())
}
