//! Figure 5: CPU-time of multi-thread fast simulation of the parallel
//! MMSE, and speedup against single-thread cycle-accurate simulation.
//!
//! Paper setup: 1024 TeraPool cores, one MMSE problem per core, four
//! precisions × four MIMO sizes; Banshee multi-thread CPU-time vs
//! QuestaSim single-thread CPU-time (up to 63× CPU-time speedup). Here
//! the cycle-accurate backend plays QuestaSim's role.
//!
//! The sweep is served as a single-lane `BatchRunner` batch: one job per
//! (MIMO, precision) configuration, each preparing its scenario
//! artifacts once and running *both* backends from them. The lane count
//! is pinned to 1 because this figure **measures wall time per job** —
//! co-scheduling other configs would charge their contention to the
//! measured run; the fast mode instead parallelizes *within* the job
//! over all host threads, exactly the paper's setup (the
//! throughput-oriented figures use multi-lane batches).
//!
//! Run: `cargo run -p terasim-bench --release --bin fig5 [--full]`

use terasim::experiments::{CycleEngine, ParallelConfig, ParallelScenario};
use terasim::serve::BatchRunner;
use terasim_bench::{host_threads, min_sec, Scale};
use terasim_kernels::Precision;

/// One measured sweep point: both backends over the config's shared
/// artifact set.
type Row = (ParallelConfig, terasim::experiments::FastOutcome, terasim::experiments::CycleOutcome);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let threads = host_threads();
    println!("{}", scale.banner("Figure 5 — parallel MMSE: fast-sim CPU-time and speedup vs cycle-accurate"));
    println!("cluster: {} cores, {} host threads; CPU-time(fast) ~ wall x threads\n", scale.cores(), threads);
    println!(" MIMO  | precision | fast wall | fast CPU-time | cycle wall | speedup (CPU) | speedup (wall)");
    println!(" ------+-----------+-----------+---------------+------------+---------------+---------------");
    let mut configs = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            configs.push(ParallelConfig { cores: scale.cores(), n, precision, seed: 50, unroll: 2 });
        }
    }
    let labels: Vec<String> =
        configs.iter().map(|c| format!("{}x{} {}", c.n, c.n, c.precision.paper_name())).collect();
    // One lane: jobs run alone, back to back, so their wall times are
    // uncontended; both backends share each job's artifact set. The batch
    // runs supervised: a fault in one configuration is reported on its
    // own row and the rest of the sweep still completes.
    let rows = BatchRunner::with_workers(1).try_run(configs, |ctx, config| -> Result<Row, _> {
        let scenario = ParallelScenario::prepare(config).unwrap_or_else(|e| {
            panic!("scenario build failed for {}x{} {}: {e}", config.n, config.n, config.precision)
        });
        // Multi-thread fast emulation (the measured Banshee side) vs the
        // single-thread event-driven cycle reference (the QuestaSim side).
        let fast = scenario.try_run_fast(ctx, threads, config.seed)?;
        let cycle = scenario.try_run_cycle(ctx, CycleEngine::EventDriven, config.seed)?;
        Ok((*config, fast, cycle))
    });
    let mut last_n = 0;
    let mut failed = 0usize;
    for (row, label) in rows.into_iter().zip(&labels) {
        let (config, fast, cycle) = match row {
            Ok(row) => row,
            Err(e) => {
                println!(" {label}: FAILED — {e}");
                failed += 1;
                continue;
            }
        };
        if last_n != 0 && config.n != last_n {
            println!();
        }
        last_n = config.n;
        assert!(fast.verified && cycle.verified, "backends diverged");
        let fast_cpu = fast.wall.as_secs_f64() * threads as f64;
        let speedup_cpu = cycle.wall.as_secs_f64() / fast_cpu;
        let speedup_wall = cycle.wall.as_secs_f64() / fast.wall.as_secs_f64();
        let n = config.n;
        println!(
            " {n:>2}x{n:<2} | {:<9} | {:>9} | {:>13} | {:>10} | {:>12.1}x | {:>12.1}x",
            config.precision.paper_name(),
            min_sec(fast.wall),
            format!("{:.2}s", fast_cpu),
            min_sec(cycle.wall),
            speedup_cpu,
            speedup_wall,
        );
    }
    println!();
    println!("Expected shape (paper): speedup grows with MIMO size (3x -> 63x CPU-time at 1024 cores).");
    if failed > 0 {
        return Err(format!("{failed} of {} sweep configurations failed", labels.len()).into());
    }
    Ok(())
}
