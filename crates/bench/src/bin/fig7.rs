//! Figure 7: MMSE cycle count — cycle-accurate reference vs the fast
//! simulator's estimate vs a bare instruction count, with relative errors.
//!
//! Paper: Banshee's static-latency + scoreboard estimate lands within
//! ~30% of RTL on average (always optimistic, since contention is not
//! modelled), and beats the raw instruction count by 12–16% in the worst
//! cases. The per-precision *speedup ordering* (16bCDotp fastest) is
//! preserved by the estimate.
//!
//! The sweep runs as a `BatchRunner` batch: one job per (MIMO, precision)
//! configuration, both backends sharing that job's artifact set.
//!
//! Run: `cargo run -p terasim-bench --release --bin fig7 [--full]`

use terasim::experiments::{CycleEngine, ParallelConfig, ParallelScenario};
use terasim::serve::BatchRunner;
use terasim_bench::Scale;
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Figure 7 — cycle count: reference vs estimate vs instruction count"));
    println!("cluster: {} cores\n", scale.cores());
    println!(" MIMO  | precision | ref cycles | est cycles | inst count | err(est) | err(inst) | rel-to-16bHalf(ref/est)");
    println!(" ------+-----------+------------+------------+------------+----------+-----------+------------------------");
    let mut configs = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in Precision::TIMED {
            configs.push(ParallelConfig { cores: scale.cores(), n, precision, seed: 70, unroll: 2 });
        }
    }
    let rows = BatchRunner::new().run(configs, |ctx, config| -> Result<_, String> {
        let scenario = ParallelScenario::prepare(&config).map_err(|e| e.to_string())?;
        let fast = scenario.run_fast(1).map_err(|e| e.to_string())?;
        let cycle =
            scenario.run_cycle(CycleEngine::Parallel(ctx.claimable_threads())).map_err(|e| e.to_string())?;
        Ok((config, fast, cycle))
    });
    let mut last_n = 0;
    let mut half_ref = 0u64;
    let mut half_est = 0u64;
    for row in rows {
        let (config, fast, cycle) = row?;
        if last_n != 0 && config.n != last_n {
            println!();
        }
        last_n = config.n;
        assert!(fast.verified && cycle.verified);
        // Per-core averages (the paper plots per-application cycles).
        let n = config.n;
        let cores = u64::from(scale.cores());
        let ref_c = cycle.cycles;
        let est_c = fast.cluster_cycles;
        let inst_c = fast.instructions / cores;
        if config.precision == Precision::Half16 {
            half_ref = ref_c;
            half_est = est_c;
        }
        let err = |x: u64| 100.0 * (x as f64 - ref_c as f64) / ref_c as f64;
        println!(
            " {n:>2}x{n:<2} | {:<9} | {:>10} | {:>10} | {:>10} | {:>+7.1}% | {:>+8.1}% | {:.2} / {:.2}",
            config.precision.paper_name(),
            ref_c,
            est_c,
            inst_c,
            err(est_c),
            err(inst_c),
            half_ref as f64 / ref_c as f64,
            half_est as f64 / est_c as f64,
        );
    }
    println!();
    println!("Expected shape (paper): estimate errors negative (optimistic), smaller than instruction-count errors;");
    println!("16bCDotp shows the largest relative speedup over 16bHalf in both reference and estimate.");
    Ok(())
}
