//! Ablation D3 (DESIGN.md): kernel loop unrolling.
//!
//! The paper: "Loops are unrolled to minimize RAW stalls, with increasing
//! benefits at higher problem sizes." This sweep runs the cycle-accurate
//! backend at unroll factors 1 and 2 and reports cycles and RAW stalls.
//!
//! Run: `cargo run -p terasim-bench --release --bin ablation_unroll [--full]`

use terasim::experiments::{self, ParallelConfig};
use terasim_bench::Scale;
use terasim_kernels::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("{}", scale.banner("Ablation D3 — dot-product loop unrolling"));
    println!("cluster: {} cores; cycle-accurate backend\n", scale.cores());
    println!(" MIMO  | precision | unroll | cycles     | raw stalls | raw%  ");
    println!(" ------+-----------+--------+------------+------------+-------");
    let mut configs = Vec::new();
    for &n in scale.mimo_sizes() {
        for precision in [Precision::Half16, Precision::WDotp16] {
            configs.push((n, precision));
        }
    }
    // Both unroll factors of one configuration per batch job (independent
    // cycle-accurate simulations — different unrolls are different guest
    // programs, hence separate artifact sets; `BatchRunner` returns rows
    // in input order and lets each job widen into idle worker lanes).
    let rows = terasim::serve::BatchRunner::new().run(configs, |ctx, (n, precision)| -> Result<_, String> {
        let run = |unroll: u32| {
            let config = ParallelConfig { cores: scale.cores(), n, precision, seed: 8, unroll };
            let out = experiments::parallel_cycle_threads(&config, ctx.claimable_threads())
                .map_err(|e| e.to_string())?;
            assert!(out.verified);
            Ok::<_, String>(out)
        };
        Ok((n, precision, run(1)?, run(2)?))
    });
    let mut last_n = 0;
    for row in rows {
        let (n, precision, base, unrolled) = row?;
        if last_n != 0 && n != last_n {
            println!();
        }
        last_n = n;
        for (unroll, out) in [(1u32, &base), (2, &unrolled)] {
            let b = out.breakdown;
            let delta = if unroll == 1 {
                String::new()
            } else {
                format!(
                    "  ({:+.1}% vs unroll 1)",
                    100.0 * (out.cycles as f64 - base.cycles as f64) / base.cycles as f64
                )
            };
            println!(
                " {n:>2}x{n:<2} | {:<9} | {unroll:>6} | {:>10} | {:>10} | {:>4.1}%{delta}",
                precision.paper_name(),
                out.cycles,
                b.stall_raw,
                100.0 * b.stall_raw as f64 / b.total() as f64,
            );
        }
    }
    println!();
    println!("Note: unrolling removes loop-counter overhead; the dual accumulation chains that break");
    println!("RAW dependences are present at every unroll factor (kernel design, DESIGN.md D3).");
    Ok(())
}
