//! Shared plumbing for the paper-figure reproduction binaries.
//!
//! Every binary accepts `--full` to run at paper scale (1024 cores, all
//! MIMO sizes, NSC = 1638); the default is a reduced configuration that
//! preserves the figures' *shape* on a laptop. The active scale is always
//! printed so `EXPERIMENTS.md` can record it.
//!
//! The sweep binaries no longer hand-roll their own parallel loops: every
//! multi-configuration sweep is a batch of jobs on
//! [`terasim::serve::BatchRunner`] (work stealing, submission-order
//! results, shared artifacts within a job's scenario).

use std::time::Duration;

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-sized: reduced cores/sizes/Monte-Carlo volume.
    Reduced,
    /// Paper-sized (`--full`).
    Full,
}

impl Scale {
    /// Parses the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Reduced
        }
    }

    /// Simulated cluster cores for the parallel experiments.
    pub fn cores(self) -> u32 {
        match self {
            Scale::Reduced => 64,
            Scale::Full => 1024,
        }
    }

    /// MIMO sizes swept.
    pub fn mimo_sizes(self) -> &'static [u32] {
        match self {
            Scale::Reduced => &[4, 8, 16],
            Scale::Full => &[4, 8, 16, 32],
        }
    }

    /// Subcarriers per OFDM symbol (full scale: the paper's 50 MHz NR
    /// carrier at 30 kHz spacing).
    pub fn nsc(self) -> u32 {
        match self {
            Scale::Reduced => 128,
            Scale::Full => terasim_phy::NrCarrier::new(50_000_000, terasim_phy::Scs::Khz30).subcarriers(),
        }
    }

    /// Monte-Carlo stopping target (bit errors per SNR point).
    pub fn target_errors(self) -> u64 {
        match self {
            Scale::Reduced => 500,
            Scale::Full => 2_000,
        }
    }

    /// Monte-Carlo iteration cap per SNR point.
    pub fn max_iterations(self) -> u64 {
        match self {
            Scale::Reduced => 20_000,
            Scale::Full => 500_000,
        }
    }

    /// Banner line for the output header.
    pub fn banner(self, figure: &str) -> String {
        let label = match self {
            Scale::Reduced => "REDUCED scale (pass --full for paper scale)",
            Scale::Full => "FULL paper scale",
        };
        format!("=== {figure} — {label} ===")
    }
}

/// Host worker threads to use.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Formats a duration like the paper's `min:sec` axes.
pub fn min_sec(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{}m{:04.1}s", (s / 60.0) as u64, s % 60.0)
    } else {
        format!("{s:.2}s")
    }
}

/// `--name value` command-line argument, parsed as `T`; `default` when
/// the flag is absent or its value does not parse.
fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Integer command-line argument with default (`--name value`).
pub fn arg_u32(name: &str, default: u32) -> u32 {
    arg(name, default)
}

/// String command-line argument with default (`--name value`).
pub fn arg_str(name: &str, default: &str) -> String {
    arg(name, default.to_string())
}

/// Float command-line argument with default (`--name value`).
pub fn arg_f64(name: &str, default: f64) -> f64 {
    arg(name, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        assert_eq!(Scale::Reduced.cores(), 64);
        assert_eq!(Scale::Full.cores(), 1024);
        assert_eq!(Scale::Full.nsc(), 1638);
        assert!(Scale::Reduced.banner("Fig 5").contains("REDUCED"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(min_sec(Duration::from_secs_f64(9.44)), "9.44s");
        assert_eq!(min_sec(Duration::from_secs(184)), "3m04.0s");
    }
}
