//! Criterion benchmark of raw ISS emulation speed (instructions per
//! second of the translate-then-interpret loop) — the figure the paper
//! quotes as 3.57 MIPS for single-thread Banshee.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use terasim_iss::{run_core, Cpu, DenseMemory, Program, RunConfig};
use terasim_riscv::{Assembler, Image, Reg, Segment};

/// An integer/FP mix resembling the MMSE inner loop.
fn workload(iterations: i32) -> Program {
    let mut a = Assembler::new(0x8000_0000);
    a.li(Reg::T0, iterations);
    a.li(Reg::A1, 0x100);
    let top = a.new_label();
    a.bind(top);
    a.lw(Reg::A2, 0, Reg::A1);
    a.lw(Reg::A3, 4, Reg::A1);
    a.fmadd_h(Reg::A4, Reg::A2, Reg::A3, Reg::A4);
    a.fmadd_h(Reg::A5, Reg::A2, Reg::A3, Reg::A5);
    a.add(Reg::A6, Reg::A2, Reg::A3);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ecall();
    let mut image = Image::new(0x8000_0000);
    image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
    Program::translate(&image).unwrap()
}

fn bench_emulation(c: &mut Criterion) {
    let iters = 2_000;
    let program = workload(iters);
    let insts_per_run = 7 * iters as u64 + 3;
    let mut group = c.benchmark_group("iss");
    group.throughput(Throughput::Elements(insts_per_run));
    group.bench_function("interpret_mips", |bencher| {
        bencher.iter(|| {
            let mut cpu = Cpu::new(0);
            let mut mem = DenseMemory::new(0, 0x1000);
            run_core(&mut cpu, &program, &mut mem, &RunConfig::default()).unwrap()
        })
    });
    group.finish();
}

fn bench_translation(c: &mut Criterion) {
    // Translation cost (the "SBT" phase): decode a 4k-instruction image.
    let mut a = Assembler::new(0x8000_0000);
    for i in 0..4096 {
        a.addi(Reg::A0, Reg::A0, i % 100);
    }
    let mut image = Image::new(0x8000_0000);
    image.push_segment(Segment::from_words(0x8000_0000, &a.finish().unwrap()));
    let mut group = c.benchmark_group("iss");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("translate", |bencher| bencher.iter(|| Program::translate(&image).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_emulation, bench_translation);
criterion_main!(benches);
