//! Criterion benchmarks of the MMSE paths: native bit-true models (the
//! Monte-Carlo workhorse) and the full ISS-executed kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use terasim_kernels::{data, native, MmseKernel, Precision, C64};
use terasim_phy::{ChannelKind, Mimo, Modulation, TxGenerator};
use terasim_terapool::{FastSim, Topology};

fn transmission(n: usize, seed: u64) -> (Vec<C64>, Vec<C64>, f64) {
    let scenario = Mimo { n_tx: n, n_rx: n, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
    let mut generator = TxGenerator::new(scenario, 12.0, seed);
    let t = generator.next_transmission();
    (t.h.iter().map(|z| (*z).into()).collect(), t.y.iter().map(|z| (*z).into()).collect(), t.sigma)
}

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_detect");
    for n in [4usize, 8, 16] {
        let (h, y, sigma) = transmission(n, 11);
        for precision in [Precision::Half16, Precision::CDotp16, Precision::WDotp8] {
            group.bench_with_input(BenchmarkId::new(precision.paper_name(), n), &n, |bencher, &n| {
                bencher.iter(|| native::detect(precision, n, &h, &y, sigma))
            });
        }
    }
    group.finish();
}

fn bench_iss_kernel(c: &mut Criterion) {
    let n = 4u32;
    let topo = Topology::scaled(8);
    let kernel = MmseKernel::new(n, Precision::CDotp16).with_active_cores(1);
    let layout = kernel.layout(&topo).unwrap();
    let image = kernel.build(&topo).unwrap();
    let mut sim = FastSim::new(topo, &image).unwrap();
    let (h, y, sigma) = transmission(n as usize, 12);
    data::write_problem(sim.memory(), &layout, 0, &h, &y, sigma);

    c.bench_function("iss_detect_4x4_cdotp", |bencher| {
        bencher.iter(|| {
            sim.memory().write_u32(layout.barrier_addr, 0);
            sim.run_cores(0..1, 1).unwrap()
        })
    });
}

criterion_group!(benches, bench_native, bench_iss_kernel);
criterion_main!(benches);
