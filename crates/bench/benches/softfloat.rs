//! Criterion micro-benchmarks of the softfloat substrate: these
//! operations dominate the inner loops of both the ISS FPU and the native
//! DUT models, so their throughput bounds overall simulation speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use terasim_softfloat::{ops, F16, F8};

fn bench_scalar(c: &mut Criterion) {
    let a = F16::from_f32(1.5);
    let b = F16::from_f32(-0.375);
    let acc = F16::from_f32(10.0);
    c.bench_function("f16_add", |bencher| bencher.iter(|| black_box(a) + black_box(b)));
    c.bench_function("f16_mul", |bencher| bencher.iter(|| black_box(a) * black_box(b)));
    c.bench_function("f16_fma", |bencher| {
        bencher.iter(|| black_box(a).mul_add(black_box(b), black_box(acc)))
    });
    c.bench_function("f16_div", |bencher| bencher.iter(|| black_box(acc) / black_box(a)));
    c.bench_function("f16_from_f64", |bencher| bencher.iter(|| F16::from_f64(black_box(0.1234567))));
    let q = F8::from_f32(1.25);
    c.bench_function("f8_mul", |bencher| bencher.iter(|| black_box(q) * black_box(q)));
}

fn bench_dotp(c: &mut Criterion) {
    let a = [F16::from_f32(0.5), F16::from_f32(-1.25)];
    let b = [F16::from_f32(2.0), F16::from_f32(0.75)];
    let acc = [F16::from_f32(3.0), F16::from_f32(-0.5)];
    c.bench_function("vfdotpex_s_h", |bencher| {
        bencher.iter(|| ops::vfdotpex_s_h(black_box(1.0), black_box(a), black_box(b)))
    });
    c.bench_function("vfcdotpex_conj_s_h", |bencher| {
        bencher.iter(|| ops::vfcdotpex_conj_s_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("cmac_conj_h", |bencher| {
        bencher.iter(|| ops::cmac_conj_h(black_box(acc), black_box(a), black_box(b)))
    });
    let a8 = [F8::from_f32(0.5), F8::from_f32(1.0), F8::from_f32(-1.5), F8::from_f32(2.0)];
    let b8 = [F8::from_f32(1.0), F8::from_f32(0.25), F8::from_f32(0.5), F8::from_f32(-1.0)];
    c.bench_function("vfdotpex_h_b", |bencher| {
        bencher.iter(|| ops::vfdotpex_h_b(black_box(acc), black_box(a8), black_box(b8)))
    });
}

criterion_group!(benches, bench_scalar, bench_dotp);
criterion_main!(benches);
