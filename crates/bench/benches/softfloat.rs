//! Criterion micro-benchmarks of the softfloat substrate: these
//! operations dominate the inner loops of both the ISS FPU and the native
//! DUT models, so their throughput bounds overall simulation speed. The
//! per-instruction ns floor this measures in isolation is what
//! `BENCH_cycle.json` reports end-to-end (`ns_per_inst`).
//!
//! The `*_reference` entries time the retained generic implementations
//! (`ops::reference`) next to the table/fast-path versions, so the
//! speedup of the fast paths stays measurable in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use terasim_softfloat::ops::{self, reference};
use terasim_softfloat::{F16, F8};

fn bench_scalar(c: &mut Criterion) {
    let a = F16::from_f32(1.5);
    let b = F16::from_f32(-0.375);
    let acc = F16::from_f32(10.0);
    c.bench_function("f16_add", |bencher| bencher.iter(|| black_box(a) + black_box(b)));
    c.bench_function("f16_mul", |bencher| bencher.iter(|| black_box(a) * black_box(b)));
    c.bench_function("f16_fma", |bencher| {
        bencher.iter(|| black_box(a).mul_add(black_box(b), black_box(acc)))
    });
    c.bench_function("f16_fma_reference", |bencher| {
        bencher.iter(|| reference::mul_add_h(black_box(a), black_box(b), black_box(acc)))
    });
    c.bench_function("f16_div", |bencher| bencher.iter(|| black_box(acc) / black_box(a)));
    c.bench_function("f16_sqrt", |bencher| bencher.iter(|| black_box(acc).sqrt()));
    c.bench_function("f16_recip", |bencher| bencher.iter(|| black_box(acc).recip()));
    c.bench_function("f16_from_f64", |bencher| bencher.iter(|| F16::from_f64(black_box(0.1234567))));
    let q = F8::from_f32(1.25);
    c.bench_function("f8_mul", |bencher| bencher.iter(|| black_box(q) * black_box(q)));
}

fn bench_convert(c: &mut Criterion) {
    let x = F16::from_f32(0.7123);
    c.bench_function("f16_to_f32_table", |bencher| bencher.iter(|| black_box(x).to_f32()));
    c.bench_function("f16_to_f32_reference", |bencher| bencher.iter(|| reference::h_to_f32(black_box(x))));
    c.bench_function("f16_from_f32_fast", |bencher| bencher.iter(|| F16::from_f32(black_box(0.7123f32))));
    c.bench_function("f16_from_f32_reference", |bencher| {
        bencher.iter(|| reference::h_from_f32(black_box(0.7123f32)))
    });
}

fn bench_dotp(c: &mut Criterion) {
    let a = [F16::from_f32(0.5), F16::from_f32(-1.25)];
    let b = [F16::from_f32(2.0), F16::from_f32(0.75)];
    let acc = [F16::from_f32(3.0), F16::from_f32(-0.5)];
    c.bench_function("vfdotpex_s_h", |bencher| {
        bencher.iter(|| ops::vfdotpex_s_h(black_box(1.0), black_box(a), black_box(b)))
    });
    c.bench_function("vfcdotpex_conj_s_h", |bencher| {
        bencher.iter(|| ops::vfcdotpex_conj_s_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("cmac_conj_h", |bencher| {
        bencher.iter(|| ops::cmac_conj_h(black_box(acc), black_box(a), black_box(b)))
    });
    let a8 = [F8::from_f32(0.5), F8::from_f32(1.0), F8::from_f32(-1.5), F8::from_f32(2.0)];
    let b8 = [F8::from_f32(1.0), F8::from_f32(0.25), F8::from_f32(0.5), F8::from_f32(-1.0)];
    c.bench_function("vfdotpex_h_b", |bencher| {
        bencher.iter(|| ops::vfdotpex_h_b(black_box(acc), black_box(a8), black_box(b8)))
    });
}

/// The fused complex-MAC primitives vs their retained four-round-trip
/// reference chains — the "one call replaces four mul/add round trips"
/// floor of the MAC-heavy kernels.
fn bench_cmac(c: &mut Criterion) {
    let a = [F16::from_f32(0.5), F16::from_f32(-1.25)];
    let b = [F16::from_f32(2.0), F16::from_f32(0.75)];
    let acc = [F16::from_f32(3.0), F16::from_f32(-0.5)];
    c.bench_function("cmac_h_fused", |bencher| {
        bencher.iter(|| ops::cmac_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("cmac_h_reference", |bencher| {
        bencher.iter(|| reference::cmac_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("cmac_conj_h_fused", |bencher| {
        bencher.iter(|| ops::cmac_conj_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("vfcdotpex_s_h_fused", |bencher| {
        bencher.iter(|| ops::vfcdotpex_s_h(black_box(acc), black_box(a), black_box(b)))
    });
    c.bench_function("vfcdotpex_s_h_reference", |bencher| {
        bencher.iter(|| reference::vfcdotpex_s_h(black_box(acc), black_box(a), black_box(b)))
    });
    // The zero-multiplicand early-out path (dominates sparse operands).
    let z = [F16::ZERO, F16::ZERO];
    c.bench_function("cmac_h_zero_early_out", |bencher| {
        bencher.iter(|| ops::cmac_h(black_box(acc), black_box(z), black_box(b)))
    });
}

criterion_group!(benches, bench_scalar, bench_convert, bench_dotp, bench_cmac);
criterion_main!(benches);
