//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! API subset used by this workspace's benches.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the bench sources
//! compiling unchanged and produces simple wall-clock measurements
//! (median of several samples, ns/iter plus element throughput) on
//! stdout — enough to track relative regressions, without criterion's
//! statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement harness handed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

/// Timing loop driver passed to the bench closure.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate an iteration count targeting ~50 ms per
        // sample, then keep the median of five samples.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = ((0.05 / once.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..per_sample {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() * 1e9 / per_sample as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            println!("{name:<40} {ns_per_iter:>14.1} ns/iter   {:>10.2} Melem/s", rate / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter * 1e-9);
            println!("{name:<40} {ns_per_iter:>14.1} ns/iter   {:>10.2} MiB/s", rate / (1 << 20) as f64);
        }
        None => println!("{name:<40} {ns_per_iter:>14.1} ns/iter"),
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.ns_per_iter, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.finish();
        c.bench_function("free", |b| b.iter(|| black_box(1 + 1)));
    }
}
