//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! API subset used by this workspace.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim implements the pieces the
//! workspace's property tests rely on — [`Strategy`](strategy::Strategy) with `prop_map` /
//! `prop_filter`, [`any`](arbitrary::any), [`Just`](strategy::Just), tuple and range strategies,
//! `collection::vec`, `prop_oneof!` and the `proptest!` / `prop_assert!`
//! macro family — with a deterministic per-test RNG and **no shrinking**:
//! a failing case reports its inputs and panics immediately.
//!
//! Semantics intentionally kept compatible so the test files compile
//! unchanged against either implementation.

pub mod test_runner {
    //! Test execution plumbing: config, RNG and case errors.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    /// Deterministic RNG (splitmix64) seeded from the test name, so every
    /// run of a property explores the same sequence of cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// `generate` returns `None` when a `prop_filter` rejects the draw;
    /// the runner retries with fresh randomness.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value (or a rejection).
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f`; `reason` is reported if rejection
        /// starves the runner.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason: reason.into(), f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// A shared generator closure, the element type of [`Union`].
    pub type ArcGen<V> = Arc<dyn Fn(&mut TestRng) -> Option<V>>;

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<ArcGen<V>>,
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union").field("options", &self.options.len()).finish()
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self { options: self.options.clone() }
        }
    }

    impl<V> Union<V> {
        /// Builds a union over the given generator closures.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<ArcGen<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Self { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> Option<V> {
            let idx = rng.below(self.options.len());
            (self.options[idx])(rng)
        }
    }

    /// Strategy produced by [`any`](crate::arbitrary::any).
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.next_u64() as $t)
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            Some(f32::from_bits(rng.next_u64() as u32))
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            Some(f64::from_bits(rng.next_u64()))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    Some((self.start as i128 + off) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    Some((lo + off) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(self.start + rng.next_f64() as $t * (self.end - self.start))
                }
            }
        )*};
    }
    range_strategy_float!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng)?;)+
                    Some(($($v,)+))
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/a)
        (A/a, B/b)
        (A/a, B/b, C/c)
        (A/a, B/b, C/c, D/d)
        (A/a, B/b, C/c, D/d, E/e)
        (A/a, B/b, C/c, D/d, E/e, F/f)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use std::marker::PhantomData;

    use crate::strategy::{Any, Strategy};

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-length vectors (see [`vec`](fn@vec)).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` generated inputs; failures report the inputs and panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut rejected: u64 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                        Some(v) => v,
                        None => {
                            rejected += 1;
                            assert!(
                                rejected < 256 * u64::from(config.cases),
                                "{}: too many prop_filter rejections", stringify!($name),
                            );
                            continue;
                        }
                    };
                )*
                case += 1;
                let inputs = format!("({:?})", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), case, config.cases, e.0, inputs,
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, not the
/// process, so the runner can attach the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::sync::Arc::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::sync::Arc<dyn Fn(&mut $crate::test_runner::TestRng) -> Option<_>>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng).unwrap();
            assert!((3..17).contains(&v));
            let w = (-5i32..=5).generate(&mut rng).unwrap();
            assert!((-5..=5).contains(&w));
            let f = (-1.5f64..2.5).generate(&mut rng).unwrap();
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let s = (0u32..1000, any::<bool>()).prop_map(|(n, f)| (n, f));
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_plumbing_works(x in 0u32..50, v in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(x < 50, "x = {x}");
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            let even = any::<u32>().prop_filter("even", |v| v % 2 == 0);
            let mut rng = TestRng::for_test("inner");
            let e = loop {
                if let Some(e) = even.generate(&mut rng) {
                    break e;
                }
            };
            prop_assert_eq!(e % 2, 0);
            prop_assert!(x == 1 || x == 2 || (5u32..8).contains(&x));
        }
    }
}
