//! Drive a BER-vs-SNR sweep through the batched job-serving layer.
//!
//! Every SNR point of a BER curve is an independent Monte-Carlo job
//! (`terasim_phy::BerJob`); this example fans a multi-detector sweep out
//! over a work-stealing `BatchRunner` — one job per (detector, SNR) pair
//! — and reassembles the curves from the submission-ordered results.
//! Because each point's seed travels with its job, the output is
//! identical for every worker count; the example checks that by
//! re-running the batch serially.
//!
//! Run with: `cargo run --release --example batch_sweep -- [--errors N]`

use terasim::serve::BatchRunner;
use terasim::DetectorKind;
use terasim_kernels::Precision;
use terasim_phy::{ber_jobs, BerJob, ChannelKind, Mimo, Modulation};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let target_errors = arg("--errors", 400);
    let max_iterations = 20_000;
    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Rayleigh };
    let snrs = [4.0, 8.0, 12.0, 16.0];
    let detectors = [
        DetectorKind::Reference64,
        DetectorKind::Native(Precision::WDotp16),
        DetectorKind::Native(Precision::CDotp16),
        DetectorKind::Native(Precision::WDotp8),
    ];

    // One flat batch over all curves: (detector, point) jobs. The runner
    // deals them round-robin and steals across lanes, so slow points
    // (low SNR under fading) never serialize the sweep.
    let jobs: Vec<(usize, BerJob)> = detectors
        .iter()
        .enumerate()
        .flat_map(|(d, _)| ber_jobs(scenario, &snrs, 42).into_iter().map(move |job| (d, job)))
        .collect();
    let runner = BatchRunner::new();
    println!(
        "4x4 16QAM Rayleigh sweep: {} jobs ({} detectors x {} SNR points) on {} worker lane(s)\n",
        jobs.len(),
        detectors.len(),
        snrs.len(),
        runner.workers()
    );
    let start = std::time::Instant::now();
    let points = runner.run(jobs.clone(), |_ctx, (d, job)| {
        // Detectors are instantiated per job: BER jobs are pure functions
        // of (scenario, snr, seed), so sharing is unnecessary here — the
        // simulator-backed experiments share artifacts instead.
        let detector = detectors[d].instantiate(scenario.n_tx);
        job.run(detector.as_ref(), target_errors, max_iterations)
    });
    let wall = start.elapsed();

    print!("{:<14}", "detector");
    for snr in snrs {
        print!(" | {snr:>7.1} dB");
    }
    println!();
    println!("{}", "-".repeat(14 + snrs.len() * 13));
    for (d, kind) in detectors.iter().enumerate() {
        print!("{:<14}", kind.label());
        for (i, _) in snrs.iter().enumerate() {
            print!(" | {:>9.2e}", points[d * snrs.len() + i].ber());
        }
        println!();
    }
    println!("\nbatch of {} jobs served in {wall:.2?}", points.len());

    // Determinism check: a serial (1-worker) pass produces the same curve.
    let serial = BatchRunner::with_workers(1).run(jobs, |_ctx, (d, job)| {
        let detector = detectors[d].instantiate(scenario.n_tx);
        job.run(detector.as_ref(), target_errors, max_iterations)
    });
    assert_eq!(points, serial, "batch must be invariant to worker count");
    println!("serial re-run bit-identical: ok");
}
