//! Design-space exploration: BER of the five kernel precisions
//! (paper Figure 9 style, reduced Monte-Carlo volume).
//!
//! Shows the paper's key finding immediately: the 16-bit variants track
//! the 64-bit reference while the 8-bit variants pay for the truncation
//! before the 16-bit solve.
//!
//! Run with: `cargo run --release --example ber_exploration`

use terasim::experiments::ber_curve;
use terasim::DetectorKind;
use terasim_kernels::Precision;
use terasim_phy::{ChannelKind, Mimo, Modulation};

fn main() {
    let scenario = Mimo { n_tx: 4, n_rx: 4, modulation: Modulation::Qam16, channel: ChannelKind::Awgn };
    let snrs = [8.0, 11.0, 14.0, 17.0];
    let detectors = [
        DetectorKind::Reference64,
        DetectorKind::Native(Precision::Half16),
        DetectorKind::Native(Precision::WDotp16),
        DetectorKind::Native(Precision::CDotp16),
        DetectorKind::Native(Precision::Quarter8),
        DetectorKind::Native(Precision::WDotp8),
    ];

    println!("4x4 16QAM AWGN — BER vs SNR (reduced MC: 500 target errors)");
    print!("{:<14}", "detector");
    for snr in snrs {
        print!(" | {snr:>7.1} dB");
    }
    println!();
    println!("{}", "-".repeat(14 + snrs.len() * 13));
    for kind in detectors {
        print!("{:<14}", kind.label());
        for point in ber_curve(scenario, &snrs, kind, 500, 20_000, 99) {
            print!(" | {:>9.2e}", point.ber());
        }
        println!();
    }
    println!("\nNote: 8b variants lose ~10x at high SNR (paper Figure 9).");
}
