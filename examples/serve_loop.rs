//! Embedding the serving daemon: two scenarios, warm caches, graceful drain.
//!
//! This is the code listing referenced from `SERVING.md` — the minimal
//! shape of a host program that keeps a [`Daemon`] resident and feeds it
//! requests as they arrive, instead of paying the artifact build
//! (ELF image, memory map, reference vectors) on every run.
//!
//! The flow is the whole serving contract in miniature:
//!
//! 1. `Daemon::start` brings up worker threads, an empty artifact cache
//!    and no pools — nothing is built until the first request.
//! 2. The first request for each scenario is a cache **miss**: the
//!    worker builds the immutable artifacts once and wraps them in a
//!    warm [`MemPool`](terasim_terapool::MemPool).
//! 3. Every later request for the same scenario (any seed — seeds are
//!    excluded from the cache key) is a **hit**: it reuses the artifacts
//!    and recycles arenas from the pool.
//! 4. `begin_drain` stops intake (`Rejected::ShuttingDown`) while queued
//!    work finishes; `shutdown` joins the workers and returns the final
//!    counters.
//!
//! Run with: `cargo run --release --example serve_loop`

use terasim::daemon::{Daemon, DaemonConfig, ServeRequest};
use terasim::experiments::{BatchConfig, ParallelConfig};
use terasim_kernels::Precision;

fn main() {
    // A small daemon: two workers, a four-deep admission queue, room for
    // both scenarios in the cache.
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        queue_depth: 4,
        cache_capacity: 2,
        ..DaemonConfig::default()
    });

    // Scenario A: fast-mode Monte-Carlo symbol batches (4x4 MIMO,
    // complex-dot-product fp16 kernels). Scenario B: a 16-core parallel
    // cluster run of the same decode. Different keys, separate builds.
    let symbol = BatchConfig { n: 4, precision: Precision::CDotp16, nsc: 4, seed: 0, unroll: 2 };
    let cluster = ParallelConfig { cores: 16, n: 4, precision: Precision::CDotp16, seed: 0, unroll: 2 };

    // Interleave requests for both scenarios. Tickets resolve out of
    // band; a real host would hold them wherever the work originated.
    let mut tickets = Vec::new();
    for round in 0..4u64 {
        let mut sym = ServeRequest::Symbol { config: symbol };
        let mut par = ServeRequest::Fast { config: cluster };
        sym.reseed(round);
        par.reseed(round.wrapping_mul(31));
        for req in [sym, par] {
            match daemon.submit(req) {
                Ok(ticket) => tickets.push(ticket),
                // Backpressure: a saturated queue sheds load instead of
                // buffering unboundedly. A real host retries or reroutes;
                // this example just waits for the oldest ticket.
                Err(rejected) => {
                    println!("shed one request: {rejected}");
                    if let Some(t) = tickets.pop() {
                        t.wait();
                    }
                }
            }
        }
    }

    // Graceful drain: everything admitted above still completes.
    daemon.begin_drain();
    for ticket in tickets {
        let done = ticket.wait();
        let outcome = match done.response {
            Ok(resp) => format!("{} (verified: {})", done.cache_hit, resp.verified()),
            Err(e) => format!("failed: {e}"),
        };
        println!("latency {:>8.3} ms  cache-hit {}", done.latency.as_secs_f64() * 1e3, outcome);
    }

    let stats = daemon.shutdown();
    println!(
        "\ncompleted {} / failed {}  cache hits {} misses {} evictions {}",
        stats.completed, stats.failed, stats.cache.hits, stats.cache.misses, stats.cache.evictions
    );
    println!(
        "pools: fresh {} recycled {} quarantined {}",
        stats.pools.fresh, stats.pools.recycled, stats.pools.quarantined
    );
    assert_eq!(stats.failed, 0);
    assert!(stats.cache.hits > 0, "repeat scenarios must ride the warm cache");
}
