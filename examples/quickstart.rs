//! Quickstart: the full co-simulation pipeline in one page.
//!
//! 1. Generate a 4×4 MIMO transmission with the PHY (16-QAM, Rayleigh).
//! 2. Generate the `16bCDotp` MMSE kernel as real RISC-V machine code.
//! 3. Run it on eight simulated Snitch cores (Banshee-style fast mode).
//! 4. Read back the detected symbols and compare with the f64 reference.
//!
//! Run with: `cargo run --release --example quickstart`

use terasim_kernels::{data, MmseKernel, Precision};
use terasim_phy::{ChannelKind, Detector, Mimo, MmseF64, Modulation, TxGenerator};
use terasim_terapool::{FastSim, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4u32;
    let cores = 8u32;
    let precision = Precision::CDotp16;

    // --- PHY: generate one transmission per core ------------------------
    let scenario = Mimo {
        n_tx: n as usize,
        n_rx: n as usize,
        modulation: Modulation::Qam16,
        channel: ChannelKind::Rayleigh,
    };
    let mut generator = TxGenerator::new(scenario, 15.0, 2024);

    // --- DUT: generate and load the kernel ------------------------------
    let topo = Topology::scaled(cores);
    let kernel = MmseKernel::new(n, precision).with_active_cores(cores);
    let layout = kernel.layout(&topo)?;
    let image = kernel.build(&topo)?;
    println!(
        "kernel: {} for {n}x{n} MIMO, {} instructions of RV32 text",
        precision,
        image.segments()[0].bytes.len() / 4
    );

    let mut sim = FastSim::new(topo, &image)?;
    let mut transmissions = Vec::new();
    for p in 0..layout.problems {
        let t = generator.next_transmission();
        let h: Vec<(f64, f64)> = t.h.iter().map(|z| (*z).into()).collect();
        let y: Vec<(f64, f64)> = t.y.iter().map(|z| (*z).into()).collect();
        data::write_problem(sim.memory(), &layout, p, &h, &y, t.sigma);
        transmissions.push(t);
    }

    // --- Simulate --------------------------------------------------------
    let result = sim.run_all(2)?;
    println!(
        "simulated {} harts: {} instructions, estimated {} cluster cycles",
        cores,
        result.total_instructions(),
        result.cycles
    );

    // --- Score vs the golden model ---------------------------------------
    println!("\n core | DUT x̂[0]            | 64bDouble x̂[0]      | tx symbol");
    println!(" -----+----------------------+----------------------+-------------");
    for (p, t) in transmissions.iter().enumerate() {
        let xhat = data::read_xhat(sim.memory(), &layout, p as u32);
        let gold = MmseF64.detect(n as usize, &t.h, &t.y, t.sigma);
        println!(
            " {p:>4} | {:>+7.3}{:>+7.3}j      | {:>+7.3}{:>+7.3}j      | {:>+5.2}{:>+5.2}j",
            xhat[0][0].to_f32(),
            xhat[0][1].to_f32(),
            gold[0].re,
            gold[0].im,
            t.x[0].re,
            t.x[0].im
        );
    }
    Ok(())
}
