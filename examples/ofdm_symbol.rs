//! Simulate the detection of one 5G OFDM symbol (paper Figure 6 style).
//!
//! A 50 MHz NR carrier has NSC = 1638 subcarriers; the paper batches all
//! of them on one Snitch and reports the single-thread simulation runtime,
//! then parallelizes independent symbols over host threads. This example
//! prepares each scenario's immutable artifacts **once**
//! (`SymbolScenario`: kernel image, decoded program, lowered micro-op
//! tables) and reuses them across every simulated symbol — the
//! multi-symbol sweep at the end is a `BatchRunner` batch of thin per-job
//! states over that shared set. It runs a reduced batch by default; pass
//! `--nsc 1638` for paper scale.
//!
//! Run with: `cargo run --release --example ofdm_symbol -- [--nsc N] [--mimo N]`

use terasim::experiments::{BatchConfig, SymbolScenario};
use terasim::serve::BatchRunner;
use terasim_kernels::Precision;

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nsc = arg("--nsc", 128);
    let n = arg("--mimo", 4);
    println!("OFDM symbol: NSC = {nsc} subcarriers, {n}x{n} MIMO\n");
    println!(" precision | wall time  | Snitch cycles | instructions |  MIPS  | verified");
    println!(" ----------+------------+---------------+--------------+--------+---------");
    for precision in Precision::TIMED {
        let config = BatchConfig { n, precision, nsc, seed: 7, unroll: 2 };
        let scenario = SymbolScenario::prepare(&config)?;
        let out = scenario.run_symbol(config.seed)?;
        println!(
            " {:<9} | {:>8.2?}   | {:>13} | {:>12} | {:>6.2} | {}",
            precision.paper_name(),
            out.wall,
            out.cycles,
            out.instructions,
            out.mips,
            out.verified
        );
    }

    // Parallel symbols over host threads (reduced count for the example):
    // one shared artifact set, one batch job per symbol with its own
    // seed, cluster memories recycled through the batch's pool (each
    // lane pays the 20 MiB arena allocation once, not per symbol).
    let threads = std::thread::available_parallelism()?.get();
    let symbols = threads as u32 * 2;
    let config = BatchConfig { n, precision: Precision::CDotp16, nsc, seed: 7, unroll: 2 };
    let scenario = SymbolScenario::prepare(&config)?;
    let _ = scenario.run_symbol(config.seed)?; // warm-up
    let start = std::time::Instant::now();
    let outs = BatchRunner::with_workers(threads).run_pooled(
        scenario.artifacts(),
        (0..symbols).collect(),
        |ctx, sym| {
            scenario
                .run_symbol_pooled(
                    ctx.pool().expect("pooled batch"),
                    config.seed.wrapping_add(u64::from(sym)),
                )
                .map_err(|e| e.to_string())
        },
    );
    let wall = start.elapsed();
    let outs = outs.into_iter().collect::<Result<Vec<_>, String>>()?;
    let serial: f64 = outs.iter().map(|o| o.wall.as_secs_f64()).sum();
    println!(
        "\n{} independent symbols on {} threads (shared artifacts, pooled memory): {:.2?} elapsed for {:.2}s of simulation (speedup {:.1}x)",
        symbols,
        threads,
        wall,
        serial,
        serial / wall.as_secs_f64()
    );
    assert!(outs.iter().all(|o| o.verified));
    Ok(())
}
