//! Writing and tracing your own RISC-V guest program.
//!
//! The framework is algorithm-agnostic (paper §VI: "the translation
//! approach is agnostic of the algorithm used"): any RV32 program built
//! with the assembler runs on the same simulator. This example writes a
//! binary16 dot-product kernel by hand, runs it with instruction tracing
//! (the Banshee `--trace` equivalent), and prints the timing estimate.
//!
//! Run with: `cargo run --release --example custom_program`

use terasim_iss::{trace_core, Cpu, DenseMemory, Memory, Program, RunConfig};
use terasim_riscv::{Assembler, Image, Reg, Segment};
use terasim_softfloat::F16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 8;
    const VEC_A: u32 = 0x100;
    const VEC_B: u32 = 0x140;

    // --- hand-written guest: acc = sum_i a[i] * b[i] in binary16 ---------
    let mut a = Assembler::new(0x8000_0000);
    a.li(Reg::A1, VEC_A as i32);
    a.li(Reg::A2, VEC_B as i32);
    a.li(Reg::T0, N as i32);
    a.li(Reg::A0, 0); // accumulator
    let top = a.new_label();
    a.bind(top);
    a.p_lh(Reg::T1, 2, Reg::A1);
    a.p_lh(Reg::T2, 2, Reg::A2);
    a.fmadd_h(Reg::A0, Reg::T1, Reg::T2, Reg::A0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ecall();
    let mut image = Image::new(0x8000_0000);
    image.push_segment(Segment::from_words(0x8000_0000, &a.finish()?));

    // --- load operands ----------------------------------------------------
    let program = Program::translate(&image)?;
    let mut mem = DenseMemory::new(0, 0x1000);
    let mut expect = 0.0f32;
    for i in 0..N {
        let (x, y) = (0.25 * (i as f32 + 1.0), 1.5 - 0.25 * i as f32);
        mem.store(VEC_A + 2 * i as u32, 2, u32::from(F16::from_f32(x).to_bits()))?;
        mem.store(VEC_B + 2 * i as u32, 2, u32::from(F16::from_f32(y).to_bits()))?;
        expect += x * y;
    }

    // --- run with tracing --------------------------------------------------
    println!(" cycle | pc         | instruction");
    println!(" ------+------------+----------------------------");
    let mut cpu = Cpu::new(0);
    let mut shown = 0;
    let stats = trace_core(&mut cpu, &program, &mut mem, &RunConfig::default(), &mut |e| {
        if shown < 14 {
            println!(" {:>5} | {:#010x} | {}", e.cycle, e.pc, e.inst);
            shown += 1;
        } else if shown == 14 {
            println!("   ... | (trace truncated)");
            shown += 1;
        }
    })?;

    let acc = F16::from_bits(cpu.reg(Reg::A0) as u16).to_f32();
    println!("\ndot product = {acc} (f64 reference {expect})");
    println!(
        "{} instructions in ~{} estimated Snitch cycles ({} RAW stall cycles)",
        stats.retired, stats.est_cycles, stats.raw_stalls
    );
    assert!((acc - expect).abs() < 0.05);
    Ok(())
}
