//! Cycle-accurate cluster simulation with stall breakdown
//! (paper Figure 8 style).
//!
//! Runs the parallel MMSE on the cycle-stepped backend — the framework's
//! RTL-simulation stand-in — through the epoch-sharded engine
//! (`CycleSim::run_parallel`) and prints where the cycles go: issued
//! instructions vs RAW, LSU-contention, I$-refill, FPU and barrier
//! stalls, cluster-wide and per group (the engine's arbitration
//! domains).
//!
//! Run with:
//! `cargo run --release --example cycle_accurate -- [--cores N] [--mimo N] [--threads N]`

use terasim::experiments::{self, ParallelConfig};
use terasim_kernels::Precision;

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = arg("--cores", 64);
    let n = arg("--mimo", 4);
    let default_threads = std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(1).min(4);
    let threads = arg("--threads", default_threads) as usize;
    println!("cycle-accurate parallel MMSE: {cores} cores, {n}x{n} MIMO, {threads} host thread(s)\n");
    println!(" precision | makespan | instr%  | raw%   | lsu%   | ins%   | acc%   | wfi%   | wall");
    println!(" ----------+----------+---------+--------+--------+--------+--------+--------+---------");
    let mut last_groups = Vec::new();
    for precision in Precision::TIMED {
        let config = ParallelConfig { cores, n, precision, seed: 3, unroll: 2 };
        // The epoch-sharded engine: one arbitration domain per topology
        // group, bit-identical to `run`/`run_naive` at any thread count.
        let out = experiments::parallel_cycle_threads(&config, threads)?;
        let b = out.breakdown;
        let total = b.total() as f64;
        let pct = |x: u64| 100.0 * x as f64 / total;
        println!(
            " {:<9} | {:>8} | {:>6.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>7.2?}",
            precision.paper_name(),
            out.cycles,
            pct(b.instructions),
            pct(b.stall_raw),
            pct(b.stall_lsu),
            pct(b.stall_ins),
            pct(b.stall_acc),
            pct(b.stall_wfi),
            out.wall,
        );
        assert!(out.verified, "architectural results diverged");
        last_groups = out.per_group;
    }
    println!("\n(The 16bHalf row shows the highest LSU share: twice the memory ops, paper §V-B.)");

    // Per-group breakdown of the last run: the sharded engine's domains.
    // A balanced workload should stay balanced across groups.
    println!("\nper-group breakdown ({} domain(s), last precision above):", last_groups.len());
    println!(" group | instructions | raw      | lsu      | ins      | acc      | wfi");
    println!(" ------+--------------+----------+----------+----------+----------+----------");
    for (g, s) in last_groups.iter().enumerate() {
        println!(
            " {g:>5} | {:>12} | {:>8} | {:>8} | {:>8} | {:>8} | {:>8}",
            s.instructions, s.stall_raw, s.stall_lsu, s.stall_ins, s.stall_acc, s.stall_wfi,
        );
    }
    Ok(())
}
