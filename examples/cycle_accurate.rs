//! Cycle-accurate cluster simulation with stall breakdown
//! (paper Figure 8 style).
//!
//! Runs the parallel MMSE on the cycle-stepped backend — the framework's
//! RTL-simulation stand-in — and prints where the cycles go: issued
//! instructions vs RAW, LSU-contention, I$-refill, FPU and barrier stalls.
//!
//! Run with: `cargo run --release --example cycle_accurate -- [--cores N] [--mimo N]`

use terasim::experiments::{self, ParallelConfig};
use terasim_kernels::Precision;

fn arg(name: &str, default: u32) -> u32 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = arg("--cores", 64);
    let n = arg("--mimo", 4);
    println!("cycle-accurate parallel MMSE: {cores} cores, {n}x{n} MIMO\n");
    println!(" precision | makespan | instr%  | raw%   | lsu%   | ins%   | acc%   | wfi%   | wall");
    println!(" ----------+----------+---------+--------+--------+--------+--------+--------+---------");
    for precision in Precision::TIMED {
        let config = ParallelConfig { cores, n, precision, seed: 3, unroll: 2 };
        let out = experiments::parallel_cycle(&config)?;
        let b = out.breakdown;
        let total = b.total() as f64;
        let pct = |x: u64| 100.0 * x as f64 / total;
        println!(
            " {:<9} | {:>8} | {:>6.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>5.1}% | {:>7.2?}",
            precision.paper_name(),
            out.cycles,
            pct(b.instructions),
            pct(b.stall_raw),
            pct(b.stall_lsu),
            pct(b.stall_ins),
            pct(b.stall_acc),
            pct(b.stall_wfi),
            out.wall,
        );
        assert!(out.verified, "architectural results diverged");
    }
    println!("\n(The 16bHalf row shows the highest LSU share: twice the memory ops, paper §V-B.)");
    Ok(())
}
