//! Workspace umbrella package.
//!
//! This crate intentionally exports nothing: it exists so the repository
//! root can own the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The actual library code lives in the
//! `crates/` members — start at [`terasim`].
